"""Tests for the analytic cost model (repro.model.cost).

The central invariant: the model's per-iteration flop/word predictions equal
the engine's measured counters exactly — they count the same events — which
is what justifies selecting strategies from predictions alone.
"""

import numpy as np
import pytest

from repro.core import strategy as S
from repro.core.engine import MemoizedMttkrp
from repro.core.symbolic import SymbolicTree
from repro.model.cost import (DEFAULT_EXECUTION, DEFAULT_MACHINE,
                              ExecutionParams, MachineModel,
                              cost_from_symbolic, cost_report,
                              execution_candidates, iteration_flops_words,
                              recommend_execution, simulate_peak_value_bytes,
                              symbolic_index_bytes)
from repro.perf import counting

from .helpers import random_coo, random_factors

RANK = 4


def run_one_iteration(engine, rng):
    """Run a full steady-state CP-ALS iteration's MTTKRPs + updates."""
    for n in engine.mode_order:
        engine.mttkrp(n)
        engine.update_factor(
            n, rng.standard_normal((engine.tensor.shape[n], engine.rank))
        )


STRATEGIES = [
    S.star(4),
    S.two_way(4),
    S.chain(4, 2),
    S.balanced_binary(4),
    S.from_nested((0, (1, 2, 3))),
]


class TestModelMatchesCounters:
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
    def test_flops_and_words_exact(self, strategy):
        rng = np.random.default_rng(0)
        tensor = random_coo(rng, (6, 5, 7, 4), 80)
        sym = SymbolicTree(tensor, strategy)
        engine = MemoizedMttkrp(
            tensor, strategy, random_factors(rng, tensor.shape, RANK),
            symbolic=sym,
        )
        run_one_iteration(engine, rng)  # warm-up to steady state
        with counting() as c:
            run_one_iteration(engine, rng)
        flops, words = iteration_flops_words(strategy, sym.node_nnz(), RANK)
        assert c.flops == flops
        assert c.words == words

    @pytest.mark.parametrize("order", [3, 5, 6])
    def test_flops_exact_other_orders(self, order):
        rng = np.random.default_rng(order)
        tensor = random_coo(rng, tuple([5] * order), 60)
        strategy = S.balanced_binary(order)
        sym = SymbolicTree(tensor, strategy)
        engine = MemoizedMttkrp(
            tensor, strategy, random_factors(rng, tensor.shape, 3),
            symbolic=sym,
        )
        run_one_iteration(engine, rng)
        with counting() as c:
            run_one_iteration(engine, rng)
        flops, _ = iteration_flops_words(strategy, sym.node_nnz(), 3)
        assert c.flops == flops

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
    def test_peak_value_bytes_matches_engine(self, strategy):
        rng = np.random.default_rng(1)
        tensor = random_coo(rng, (6, 5, 7, 4), 80)
        sym = SymbolicTree(tensor, strategy)
        engine = MemoizedMttkrp(
            tensor, strategy, random_factors(rng, tensor.shape, RANK),
            symbolic=sym,
        )
        peak = 0
        for _ in range(2):
            for n in engine.mode_order:
                engine.mttkrp(n)
                peak = max(peak, engine.live_value_bytes())
                engine.update_factor(
                    n, rng.standard_normal((tensor.shape[n], RANK))
                )
        assert peak == simulate_peak_value_bytes(strategy, sym.node_nnz(), RANK)

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
    def test_index_bytes_matches_symbolic(self, strategy):
        rng = np.random.default_rng(2)
        tensor = random_coo(rng, (6, 5, 7, 4), 80)
        sym = SymbolicTree(tensor, strategy)
        assert symbolic_index_bytes(strategy, sym.node_nnz()) == sym.index_nbytes()


class TestCostReport:
    def test_star_flops_formula(self):
        """Star: every leaf rebuilt from the root with N-1 contractions."""
        strategy = S.star(4)
        nnz = 1000
        # Node nnz irrelevant beyond the root for flops (parents are root).
        node_nnz = [nnz] + [10] * (len(strategy.nodes) - 1)
        flops, _ = iteration_flops_words(strategy, node_nnz, 8)
        assert flops == 4 * nnz * 8 * 4  # N leaves * nnz * R * (N-1 + 1)

    def test_memoization_reduces_predicted_flops_with_overlap(self):
        """With strong overlap the BDT predicts fewer flops than the star."""
        rng = np.random.default_rng(3)
        # Heavy prefix sharing -> intermediate nodes shrink.
        idx = np.array(
            [[i % 3, i % 3, i % 5, i % 5] for i in range(200)]
        )
        from repro.core.coo import CooTensor

        tensor = CooTensor(idx, rng.random(200), (3, 3, 5, 5))
        star_sym = SymbolicTree(tensor, S.star(4))
        bdt_sym = SymbolicTree(tensor, S.balanced_binary(4))
        star_cost = cost_from_symbolic(star_sym, 16)
        bdt_cost = cost_from_symbolic(bdt_sym, 16)
        assert bdt_cost.flops_per_iteration < star_cost.flops_per_iteration

    def test_star_zero_peak_memory_except_leaves(self):
        strategy = S.star(3)
        node_nnz = [100, 10, 10, 10]
        peak = simulate_peak_value_bytes(strategy, node_nnz, 2)
        # Only one leaf value matrix lives at a time under the schedule.
        assert peak == 10 * 2 * 8

    def test_total_memory_is_sum(self):
        rng = np.random.default_rng(4)
        tensor = random_coo(rng, (5, 5, 5), 40)
        report = cost_from_symbolic(SymbolicTree(tensor, S.star(3)), 2)
        assert report.total_memory_bytes == (
            report.peak_value_bytes + report.index_bytes
        )

    def test_node_nnz_length_validation(self):
        with pytest.raises(ValueError):
            cost_report(S.star(3), [1, 2], 4)

    def test_summary_renders(self):
        rng = np.random.default_rng(5)
        tensor = random_coo(rng, (4, 4, 4), 20)
        report = cost_from_symbolic(SymbolicTree(tensor, S.star(3)), 2)
        assert "star" in report.summary()


class TestMachineModel:
    def test_seconds_linear(self):
        m = MachineModel(alpha_per_flop=2.0, beta_per_word=3.0)
        assert m.seconds(10, 100) == pytest.approx(320.0)

    def test_default_machine_positive(self):
        assert DEFAULT_MACHINE.alpha_per_flop > 0
        assert DEFAULT_MACHINE.beta_per_word > 0

    def test_predicted_seconds_uses_machine(self):
        rng = np.random.default_rng(6)
        tensor = random_coo(rng, (4, 4, 4), 20)
        sym = SymbolicTree(tensor, S.star(3))
        fast = cost_from_symbolic(sym, 2, MachineModel(1e-12, 1e-12))
        slow = cost_from_symbolic(sym, 2, MachineModel(1e-6, 1e-6))
        assert slow.predicted_seconds > fast.predicted_seconds


class TestExecutionModel:
    """Tier/layout pricing behind ``repro plan --workers`` and the
    ``--tier auto`` / ``--layout auto`` decompose paths."""

    SHAPE = (400, 300, 250, 200)
    NNZ = 200_000
    RANK = 16

    def test_four_candidates_priced(self):
        cands = execution_candidates(self.SHAPE, self.NNZ, self.RANK, 4)
        assert [(c.tier, c.layout) for c in cands] == [
            ("thread", "numpy"), ("thread", "alto"),
            ("process", "numpy"), ("process", "alto"),
        ]
        for c in cands:
            assert c.feasible
            assert c.n_workers == 4
            assert c.predicted_seconds > 0
            assert c.terms["base_seconds"] > 0

    def test_terms_sum_to_prediction(self):
        for c in execution_candidates(self.SHAPE, self.NNZ, self.RANK, 4):
            overheads = [k for k in c.terms
                         if k.endswith("_seconds") and k != "base_seconds"]
            assert sum(c.terms[k] for k in overheads) == \
                pytest.approx(c.predicted_seconds)

    def test_alto_halves_index_traffic_at_order_4(self):
        """One packed word replaces four coordinates: the alto layout's
        index bytes are exactly ``1/ndim`` of the COO layout's."""
        cands = {(c.tier, c.layout): c for c in execution_candidates(
            self.SHAPE, self.NNZ, self.RANK, 1)}
        coo = cands[("thread", "numpy")].index_bytes
        alto = cands[("thread", "alto")].index_bytes
        assert alto * len(self.SHAPE) == coo

    def test_alto_infeasible_past_63_bits(self):
        cands = execution_candidates((1 << 32, 1 << 32), 100, 8, 2)
        infeasible = [c for c in cands if not c.feasible]
        assert [(c.tier, c.layout) for c in infeasible] == [
            ("thread", "alto"), ("process", "alto"),
        ]
        for c in infeasible:
            assert c.predicted_seconds == float("inf")
            assert "64 index bits" in c.reason and "63" in c.reason

    def test_recommend_is_cheapest_feasible(self):
        cands = execution_candidates(self.SHAPE, self.NNZ, self.RANK, 4)
        rec = recommend_execution(self.SHAPE, self.NNZ, self.RANK, 4)
        best = min((c for c in cands if c.feasible),
                   key=lambda c: c.predicted_seconds)
        assert (rec.tier, rec.layout) == (best.tier, best.layout)
        assert rec.predicted_seconds == best.predicted_seconds

    def test_single_worker_recommends_thread(self):
        """At p=1 both tiers price identically (no overheads on either
        side) and the tie must break toward threads — no pool needed."""
        rec = recommend_execution(self.SHAPE, self.NNZ, self.RANK, 1)
        assert rec.tier == "thread"

    def test_process_beats_thread_at_scale(self):
        """Large tensors at p>=2: the GIL-serial fraction caps the thread
        tier while process overheads (IPC + reduction) amortize away."""
        cands = {(c.tier, c.layout): c for c in execution_candidates(
            self.SHAPE, self.NNZ, self.RANK, 4)}
        assert cands[("process", "numpy")].predicted_seconds < \
            cands[("thread", "numpy")].predicted_seconds
        rec = recommend_execution(self.SHAPE, self.NNZ, self.RANK, 4)
        assert rec.tier == "process"

    def test_tiny_tensor_stays_on_threads(self):
        """Per-task IPC dwarfs the kernel on small inputs."""
        rec = recommend_execution((20, 20, 20), 500, 4, 4)
        assert rec.tier == "thread"

    def test_alto_wins_with_order(self):
        """The decode surcharge is flat per index word while the traffic
        saving grows with order: alto wins the layout race at order 4."""
        rec = recommend_execution(self.SHAPE, self.NNZ, self.RANK, 4)
        assert rec.layout == "alto"

    def test_decode_price_can_flip_layout(self):
        params = ExecutionParams(
            alto_decode_flops_per_index=DEFAULT_EXECUTION
            .alto_decode_flops_per_index * 50
        )
        rec = recommend_execution(
            self.SHAPE, self.NNZ, self.RANK, 4, params=params
        )
        assert rec.layout == "numpy"

    def test_to_dict_roundtrips_terms(self):
        rec = recommend_execution(self.SHAPE, self.NNZ, self.RANK, 2)
        d = rec.to_dict()
        assert d["tier"] == rec.tier and d["layout"] == rec.layout
        assert d["feasible"] is True
        assert d["terms"] == rec.terms
        assert d["predicted_seconds"] == rec.predicted_seconds
