"""Run-scoped telemetry: RunContext, the registry, and cross-run isolation.

Covers the PR-7 tentpole surface end to end:

* ambient vs scoped contexts (instrument dispatch, run_id stamping);
* two *concurrent* ``cp_als`` runs with fully separated telemetry;
* thread-safety of the event ring buffer and metrics registry under
  simultaneous emitters from two runs;
* ``repro serve`` with two runs: ``/runz`` lists both, ``/metrics``
  carries distinct ``run_id`` labels and still validates;
* cross-process span merging (``merge_subprocess_spans``) and the
  structural self-check (``validate_span_tree``), including worker-
  interior kernel spans from the process tier.
"""

import json
import threading
import urllib.request
import warnings

import numpy as np
import pytest

from repro.core.cpals import cp_als
from repro.core.strategy import balanced_binary
from repro.obs import events as obs_events
from repro.obs import memory as obs_memory
from repro.obs import runctx
from repro.obs import trace
from repro.obs.export import validate_span_tree
from repro.obs.metrics import registry
from repro.obs.serve import ObsServer, render_openmetrics, validate_openmetrics

from .helpers import random_coo

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.obs.watchdog.ModelDriftWarning"
)


@pytest.fixture(autouse=True)
def clean_state():
    """Each test starts and ends with globals off/empty and no runs."""
    def reset():
        trace.disable()
        trace.get_tracer().clear()
        obs_memory.disable()
        obs_memory.get_tracker().reset()
        obs_events.disable()
        obs_events.get_log().clear()
        registry.reset()
        runctx.run_registry.clear()
    reset()
    yield
    reset()


def small_tensor(seed=0, shape=(12, 11, 10, 9), nnz=400):
    return random_coo(np.random.default_rng(seed), shape, nnz)


def run_als(ctx, seed=0, **kwargs):
    kwargs.setdefault("strategy", balanced_binary(4))
    kwargs.setdefault("n_iter_max", 2)
    return cp_als(small_tensor(seed), 3, run_ctx=ctx, **kwargs)


class TestRunContext:
    def test_ambient_defers_to_globals(self):
        ctx = runctx.RunContext.ambient()
        assert not ctx.owns_telemetry
        trace.enable(clear=True)
        with runctx.using(ctx):
            assert trace.get_tracer() is not ctx.tracer  # ctx.tracer is None
            with trace.span("kernel", mode=0):
                pass
        spans = trace.get_tracer().finished()
        assert [s.kind for s in spans] == ["kernel"]

    def test_ambient_stamps_run_id_on_events(self):
        obs_events.enable(clear=True)
        ctx = runctx.RunContext.ambient()
        with runctx.using(ctx):
            obs_events.emit("iteration", iteration=1)
        (event,) = obs_events.get_log().tail(1)
        assert event["run_id"] == ctx.run_id

    def test_scoped_isolates_all_instruments(self):
        ctx = runctx.RunContext.scoped(trace=True, mem=True)
        assert ctx.owns_telemetry
        with runctx.using(ctx):
            assert trace.enabled()
            assert trace.get_tracer() is ctx.tracer
            assert obs_events.get_log() is ctx.events
            assert obs_memory.get_tracker() is ctx.memory
            with trace.span("kernel", mode=1):
                pass
            obs_events.emit("iteration", iteration=3)
            registry.incr("als.iterations")
        # Nothing leaked into the globals; everything is on the context.
        assert len(trace._tracer) == 0
        assert len(obs_events._log) == 0
        assert registry.snapshot()["events"] == {}
        assert len(ctx.tracer) == 1
        assert ctx.metrics.snapshot()["events"] == {"als.iterations": 1}
        assert ctx.events.tail(1)[0]["run_id"] == ctx.run_id

    def test_scoped_flags_pin_over_globals(self):
        """A scoped run traces even when the process default is off —
        and an off-scoped run stays dark when the default is on."""
        ctx_on = runctx.RunContext.scoped(trace=True)
        ctx_off = runctx.RunContext.scoped(trace=False, events=False)
        assert not trace.enabled()
        with runctx.using(ctx_on):
            assert trace.enabled()
        trace.enable()
        with runctx.using(ctx_off):
            assert not trace.enabled()
            assert not obs_events.enabled()

    def test_status_lifecycle_and_registry(self):
        ctx = runctx.RunContext.scoped()
        assert ctx.status == "created"
        with runctx.using(ctx):
            assert ctx.status == "running"
            assert runctx.current() is ctx
            assert runctx.run_registry.get(ctx.run_id) is ctx
        assert ctx.status == "finished"
        assert ctx.finished_at is not None
        assert runctx.current() is None
        # Still listed after finishing (bounded retention, not deletion).
        assert runctx.run_registry.get(ctx.run_id) is ctx

    def test_failed_status_on_exception(self):
        ctx = runctx.RunContext.scoped()
        with pytest.raises(RuntimeError):
            with runctx.using(ctx):
                raise RuntimeError("boom")
        assert ctx.status == "failed"

    def test_registry_bounded_eviction_keeps_active(self):
        reg = runctx.RunRegistry(keep_finished=2)
        active = runctx.RunContext.scoped()
        active.status = "running"
        reg.register(active)
        finished = [runctx.RunContext.scoped() for _ in range(4)]
        for c in finished:
            c.status = "finished"
            reg.register(c)
        ids = {c.run_id for c in reg.runs()}
        assert active.run_id in ids
        assert len([i for i in ids if i != active.run_id]) == 2
        # The newest finished ones survived.
        assert finished[-1].run_id in ids and finished[-2].run_id in ids


class TestConcurrentRuns:
    def test_two_cp_als_runs_zero_cross_talk(self):
        """The acceptance-criteria scenario: two concurrent decompositions,
        each with a scoped context, end with fully separated telemetry."""
        ctxs = [
            runctx.RunContext.scoped(run_id=f"run-iso{i}", trace=True)
            for i in range(2)
        ]
        errors = []

        def work(i):
            try:
                result = run_als(ctxs[i], seed=i)
                assert result.n_iterations >= 1
            except Exception as exc:  # pragma: no cover - fail loudly below
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        for i, ctx in enumerate(ctxs):
            assert ctx.status == "finished"
            spans = ctx.tracer.finished()
            assert any(s.kind == "als_iteration" for s in spans)
            assert validate_span_tree(spans) == []
            run_ids = {e["run_id"] for e in ctx.events.tail(10_000)}
            assert run_ids == {ctx.run_id}
            snap = ctx.metrics.snapshot()
            assert snap["spans"]["als_iteration"]["count"] >= 1
        # Globals stayed untouched: the runs really were isolated.
        assert len(trace._tracer) == 0
        assert registry.snapshot()["events"] == {}
        listed = {c.run_id for c in runctx.run_registry.runs()}
        assert {"run-iso0", "run-iso1"} <= listed

    def test_cp_als_without_context_gets_ambient(self):
        """A bare cp_als call registers an ambient run on the registry."""
        result = cp_als(small_tensor(), 3, strategy="star", n_iter_max=2)
        assert result.n_iterations >= 1
        runs = runctx.run_registry.runs()
        assert len(runs) == 1
        assert not runs[0].owns_telemetry
        assert runs[0].status == "finished"
        assert runs[0].meta.get("rank") == 3

    def test_concurrent_emitters_stress(self):
        """Satellite 2: ring buffer + registry under simultaneous emitters
        from two runs (4 threads each), with exact final accounting."""
        n_threads, n_each = 4, 200
        ctxs = [
            runctx.RunContext.scoped(run_id=f"run-stress{i}",
                                     events_maxlen=2 * n_threads * n_each)
            for i in range(2)
        ]
        barrier = threading.Barrier(2 * n_threads)
        errors = []

        def emitter(ctx):
            try:
                with runctx.using(ctx, register=False):
                    barrier.wait(timeout=10)
                    for k in range(n_each):
                        obs_events.emit("iteration", iteration=k)
                        registry.incr("als.iterations")
                        registry.observe_span("kernel", 1e-6)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=emitter, args=(ctx,))
            for ctx in ctxs for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for ctx in ctxs:
            assert len(ctx.events) == n_threads * n_each
            assert ctx.events.n_dropped == 0
            snap = ctx.metrics.snapshot()
            assert snap["events"]["als.iterations"] == n_threads * n_each
            assert snap["spans"]["kernel"]["count"] == n_threads * n_each
            assert {e["run_id"] for e in ctx.events.tail(10_000)} == \
                {ctx.run_id}


class TestServeTwoRuns:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.read().decode()

    def test_runz_and_metrics_with_two_runs(self):
        """Satellite 3: both run_ids on /runz, distinct run_id labels on
        /metrics, and the exposition still validates."""
        ctxs = [
            runctx.RunContext.scoped(run_id=f"run-serve{i}", trace=True)
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=run_als, args=(ctxs[i], i))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with ObsServer(port=0) as server:
            runz = json.loads(self._get(server.url + "/runz"))
            listed = {r["run_id"]: r for r in runz["runs"]}
            assert {"run-serve0", "run-serve1"} <= set(listed)
            for i in range(2):
                entry = listed[f"run-serve{i}"]
                assert entry["scoped"] is True
                assert entry["status"] == "finished"
                assert entry["n_spans"] > 0
                assert entry["run"]["iteration"] >= 1

            text = self._get(server.url + "/metrics")
        assert validate_openmetrics(text) == []
        assert 'run_id="run-serve0"' in text
        assert 'run_id="run-serve1"' in text
        for i in range(2):
            assert (f'repro_counter_mttkrps_total{{run_id="run-serve{i}"}}'
                    in text)
            assert (f'kind="als_iteration",run_id="run-serve{i}"' in text)

    def test_render_without_runs_matches_legacy_shape(self):
        registry.set_gauge("pool.imbalance", 1.5)
        text = render_openmetrics(include_runs=False)
        assert validate_openmetrics(text) == []
        assert "repro_pool_imbalance 1.5" in text
        assert "run_id=" not in text


class TestMergeSubprocessSpans:
    def payload(self):
        """A worker-style batch: root kernel span with one child chunk."""
        return [
            {"id": 7, "parent": None, "kind": "kernel", "t0": 0.1,
             "t1": 0.5, "tid": 1, "attrs": {"mode": 0}},
            {"id": 8, "parent": 7, "kind": "kernel_chunk", "t0": 0.2,
             "t1": 0.4, "tid": 1, "attrs": {"phase": "scatter"}},
        ]

    def test_remaps_ids_offsets_times_and_reparents(self):
        trace.enable(clear=True)
        with trace.span("pool_task", index=0) as rec:
            pass
        merged = trace.merge_subprocess_spans(
            self.payload(), offset=10.0, parent=rec.id, tid=4242,
        )
        kernel, chunk = merged
        assert kernel.parent == rec.id
        assert chunk.parent == kernel.id
        assert kernel.id != 7 and chunk.id != 8
        assert kernel.t0 == pytest.approx(10.1)
        assert chunk.t1 == pytest.approx(10.4)
        assert kernel.tid == chunk.tid == 4242
        assert registry.snapshot()["spans"]["kernel_chunk"]["count"] == 1
        assert validate_span_tree(trace.get_tracer().finished(),
                                  epsilon=20.0) == []

    def test_noop_when_tracing_off(self):
        assert trace.merge_subprocess_spans(
            self.payload(), offset=0.0) == []
        assert len(trace.get_tracer().finished()) == 0

    def test_validate_span_tree_catches_breakage(self):
        from repro.obs.trace import SpanRecord

        good = SpanRecord(id=1, parent=None, kind="a", t0=0.0, tid=0,
                          attrs={}, t1=1.0)
        orphan = SpanRecord(id=2, parent=99, kind="b", t0=0.1, tid=0,
                            attrs={}, t1=0.2)
        escapee = SpanRecord(id=3, parent=1, kind="c", t0=0.5, tid=0,
                             attrs={}, t1=5.0)
        backwards = SpanRecord(id=4, parent=None, kind="d", t0=2.0, tid=0,
                               attrs={}, t1=1.0)
        errors = validate_span_tree([good, orphan, escapee, backwards])
        assert len(errors) == 3
        assert any("parent 99 not in batch" in e for e in errors)
        assert any("ends" in e and "after" in e for e in errors)
        assert any("t1" in e and "< t0" in e for e in errors)
        assert validate_span_tree([good]) == []


class TestProcessTierWorkerSpans:
    def test_worker_interior_kernel_spans_in_merged_trace(self):
        """The tentpole acceptance check, in-process: a traced process-tier
        MTTKRP yields genuine worker-interior kernel spans — under their
        pool_task parents, on worker-pid lanes — and the merged trace
        passes the structural self-check."""
        import os

        from repro.parallel.procpool import ProcessMttkrp

        tensor = small_tensor(3, shape=(14, 13, 12), nnz=600)
        rng = np.random.default_rng(3)
        factors = [rng.standard_normal((s, 4)) for s in tensor.shape]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = ProcessMttkrp(
                tensor, 2, layout="alto", allow_oversubscribe=True
            )
        try:
            backend.set_factors(factors)
            with trace.tracing():
                backend.mttkrp(0)
                spans = trace.get_tracer().finished()
        finally:
            backend.close()

        by_id = {s.id: s for s in spans}
        tasks = {s.id: s for s in spans if s.kind == "pool_task"}
        kernels = [s for s in spans if s.kind == "kernel"]
        decodes = [s for s in spans if s.kind == "alto_decode"]
        chunks = [s for s in spans if s.kind == "kernel_chunk"]
        assert tasks and kernels and decodes and chunks
        parent_pid = os.getpid()
        for k in kernels:
            assert k.parent in tasks, "kernel span not under a pool_task"
            task = tasks[k.parent]
            assert task.attrs["source"] == "measured"
            assert task.attrs["pid"] != parent_pid
            # Worker spans render on the worker's pid lane.
            assert k.tid == task.attrs["pid"]
        for c in chunks:
            assert by_id[c.parent].kind == "kernel"
        assert validate_span_tree(spans) == []
