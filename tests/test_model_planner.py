"""Tests for the adaptive planner (repro.model.planner) and overlap counter."""

import numpy as np
import pytest

from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.symbolic import SymbolicTree
from repro.model.calibrate import calibrate_machine, reset_calibration
from repro.model.cost import MachineModel
from repro.model.overlap import DistinctCounter
from repro.model.planner import plan
from repro.model.report import format_table
from repro.synth.skewed import skewed_random_tensor

from .helpers import random_coo


@pytest.fixture(scope="module")
def tensor4d():
    return skewed_random_tensor(
        (40, 50, 30, 20), 3000, exponents=1.1, random_state=0
    )


class TestDistinctCounter:
    def test_exact_counts_match_symbolic(self, tensor4d):
        counter = DistinctCounter(tensor4d)
        for strategy in (S.star(4), S.balanced_binary(4), S.chain(4, 2)):
            sym = SymbolicTree(tensor4d, strategy)
            assert counter.node_nnz(strategy) == sym.node_nnz()

    def test_full_mode_set_is_nnz(self, tensor4d):
        counter = DistinctCounter(tensor4d)
        assert counter.count(range(4)) == tensor4d.nnz

    def test_empty_mode_set(self, tensor4d):
        counter = DistinctCounter(tensor4d)
        assert counter.count([]) == 1

    def test_empty_tensor(self):
        counter = DistinctCounter(CooTensor.empty((3, 4)))
        assert counter.count([0]) == 0
        assert counter.count([]) == 0

    def test_cache_shared_across_strategies(self, tensor4d):
        counter = DistinctCounter(tensor4d)
        counter.node_nnz(S.balanced_binary(4))
        size_after_first = counter.cache_size()
        counter.node_nnz(S.two_way(4))  # same mode sets: (0,1), (2,3), leaves
        assert counter.cache_size() == size_after_first

    def test_sampled_reasonable(self):
        t = skewed_random_tensor((200, 200, 200), 30_000, 1.2, random_state=1)
        exact = DistinctCounter(t, method="exact")
        sampled = DistinctCounter(t, method="sampled", sample_size=5000)
        for modes in ([0, 1], [1, 2], [0]):
            e = exact.count(modes)
            s = sampled.count(modes)
            assert 0.3 * e <= s <= 3.0 * e, (modes, e, s)

    def test_sampled_capped_by_nnz(self):
        t = skewed_random_tensor((50, 50, 50), 5000, 0.0, random_state=2)
        sampled = DistinctCounter(t, method="sampled", sample_size=1000)
        assert sampled.count([0, 1, 2]) == t.nnz
        assert sampled.count([0]) <= 50

    def test_invalid_method(self, tensor4d):
        with pytest.raises(ValueError):
            DistinctCounter(tensor4d, method="guess")


class TestPlanner:
    def test_best_is_first_feasible(self, tensor4d):
        report = plan(tensor4d, rank=8)
        assert report.best is report.scored[0]
        assert report.best.feasible

    def test_candidates_sorted_by_prediction(self, tensor4d):
        report = plan(tensor4d, rank=8)
        preds = [s.predicted_seconds for s in report.scored if s.feasible]
        assert preds == sorted(preds)

    def test_star_never_beats_best(self, tensor4d):
        """The planner includes the star, so best <= star in prediction."""
        report = plan(tensor4d, rank=8)
        star_rank = report.rank_of(S.star(4))
        assert report.scored[star_rank].predicted_seconds >= (
            report.best.predicted_seconds
        )

    def test_memoization_chosen_for_skewed_tensor(self, tensor4d):
        """On an order-4 skewed tensor memoization must win the prediction."""
        report = plan(tensor4d, rank=16)
        assert report.best.strategy.n_intermediates() > 0

    def test_memory_budget_excludes_candidates(self, tensor4d):
        unbounded = plan(tensor4d, rank=8)
        # Budget below the best candidate's footprint forces a cheaper pick.
        tight = plan(
            tensor4d, rank=8,
            memory_budget=unbounded.best.cost.total_memory_bytes - 1,
        )
        assert tight.best.strategy != unbounded.best.strategy or (
            tight.best.cost.total_memory_bytes
            < unbounded.best.cost.total_memory_bytes
        )

    def test_impossible_budget_raises_on_best(self, tensor4d):
        report = plan(tensor4d, rank=8, memory_budget=1)
        with pytest.raises(RuntimeError):
            _ = report.best

    def test_explicit_candidates(self, tensor4d):
        cands = [S.star(4), S.balanced_binary(4)]
        report = plan(tensor4d, rank=4, candidates=cands)
        assert len(report.scored) == 2

    def test_wrong_order_candidate_rejected(self, tensor4d):
        with pytest.raises(ValueError):
            plan(tensor4d, rank=4, candidates=[S.star(3)])

    def test_empty_candidates_rejected(self, tensor4d):
        with pytest.raises(ValueError):
            plan(tensor4d, rank=4, candidates=[])

    def test_order_one_tensor_rejected(self):
        with pytest.raises(ValueError):
            plan(CooTensor.empty((5,)), rank=2)

    def test_sampled_planning(self, tensor4d):
        report = plan(tensor4d, rank=8, count_method="sampled",
                      sample_size=1000)
        assert report.best.feasible
        assert report.count_method == "sampled"

    def test_summary_renders(self, tensor4d):
        report = plan(tensor4d, rank=8)
        text = report.summary()
        assert "candidates" in text

    def test_rank_of_unknown_strategy(self, tensor4d):
        report = plan(tensor4d, rank=8, candidates=[S.star(4)])
        with pytest.raises(KeyError):
            report.rank_of(S.balanced_binary(4))

    def test_planner_prediction_orders_actual_work(self, tensor4d):
        """Predicted flop ordering equals measured flop ordering (exact counts)."""
        from repro.core.engine import MemoizedMttkrp
        from repro.perf import counting

        rng = np.random.default_rng(3)
        factors = [
            rng.random((s, 8)) for s in tensor4d.shape
        ]
        report = plan(tensor4d, rank=8,
                      candidates=[S.star(4), S.balanced_binary(4)])
        measured = {}
        for scored in report.scored:
            eng = MemoizedMttkrp(tensor4d, scored.strategy, factors)
            for n in eng.mode_order:  # warm-up
                eng.mttkrp(n)
                eng.update_factor(n, factors[n])
            with counting() as c:
                for n in eng.mode_order:
                    eng.mttkrp(n)
                    eng.update_factor(n, factors[n])
            measured[scored.strategy.signature()] = c.flops
            assert c.flops == scored.cost.flops_per_iteration
        sigs = [s.strategy.signature() for s in report.scored]
        assert measured[sigs[0]] <= measured[sigs[1]]


class TestCalibrate:
    def test_calibration_positive_and_cached(self):
        reset_calibration()
        m1 = calibrate_machine(n_elements=100_000, repeats=1)
        assert m1.alpha_per_flop > 0
        assert m1.beta_per_word > 0
        m2 = calibrate_machine(n_elements=100_000, repeats=1)
        assert m2 is m1  # cached per parameter set
        reset_calibration()

    def test_cache_keyed_on_parameters(self):
        """Different measurement sizes are different calibrations — a
        second call must re-measure, not alias the first result."""
        reset_calibration()
        m1 = calibrate_machine(n_elements=100_000, repeats=1)
        m2 = calibrate_machine(n_elements=50_000, rank=8, repeats=1)
        assert m2 is not m1
        # both entries stay cached independently
        assert calibrate_machine(n_elements=100_000, repeats=1) is m1
        assert calibrate_machine(n_elements=50_000, rank=8, repeats=1) is m2
        reset_calibration()
        assert calibrate_machine(n_elements=100_000, repeats=1) is not m1

    def test_force_recalibrates(self):
        m1 = calibrate_machine(n_elements=100_000, repeats=1)
        m2 = calibrate_machine(n_elements=100_000, repeats=1, force=True)
        assert m2 is not m1
        reset_calibration()


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["b", 2_000_000]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_numeric_right_aligned(self):
        text = format_table(["x"], [[1.0], [100.0]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1")
