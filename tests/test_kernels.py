"""Tests for the fused kernel layer (repro.kernels).

The contract: every registered backend computes the same MTTKRP as the
naive COO baseline, reports identical perf counters, and the ``numpy``
backend is bitwise identical to the ``reference`` (seed) numeric path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.baselines.coo_mttkrp import CooMttkrp
from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.dtypes import AGREEMENT_RTOL
from repro.core.engine import MemoizedMttkrp
from repro.core.symbolic import SymbolicTree
from repro.kernels import (KernelBackend, WorkspaceArena, autotune_block_rows,
                           available_kernels, clear_tuning_cache,
                           default_block_rows, get_kernel, resolve_block_rows,
                           segment_blocks, unavailable_kernels)
from repro.parallel import ParallelCooMttkrp, ParallelMemoizedMttkrp
from repro.perf import counting

from .helpers import random_coo, random_factors

BACKENDS = available_kernels()


def naive_mttkrp(tensor, factors, mode):
    backend = CooMttkrp(tensor)
    backend.set_factors(factors)
    return backend.mttkrp(mode)


def strategy_for(order: int) -> S.MemoStrategy:
    return S.balanced_binary(order)


# ---------------------------------------------------------------------------
# backend <-> baseline parity (property-based)
# ---------------------------------------------------------------------------

@hst.composite
def tensor_cases(draw):
    """Ragged random tensors of order 3-5 (empty slices arise naturally
    whenever a dimension exceeds the distinct indices drawn)."""
    order = draw(hst.integers(3, 5))
    shape = tuple(draw(hst.integers(2, 7)) for _ in range(order))
    nnz = draw(hst.integers(1, 50))
    rank = draw(hst.sampled_from([1, 8, 17]))
    seed = draw(hst.integers(0, 2**31 - 1))
    return shape, nnz, rank, seed


class TestBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(case=tensor_cases())
    @settings(max_examples=25, deadline=None)
    def test_matches_naive_baseline(self, backend, case):
        shape, nnz, rank, seed = case
        rng = np.random.default_rng(seed)
        tensor = random_coo(rng, shape, nnz)
        factors = random_factors(rng, shape, rank)
        engine = MemoizedMttkrp(
            tensor, strategy_for(len(shape)), factors, kernel=backend
        )
        for mode in range(tensor.ndim):
            np.testing.assert_allclose(
                engine.mttkrp(mode),
                naive_mttkrp(tensor, factors, mode),
                rtol=AGREEMENT_RTOL, atol=AGREEMENT_RTOL,
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("rank", [1, 8, 17])
    def test_empty_slice_tensor(self, backend, rank):
        """Slices with no nonzeros must come out exactly zero."""
        idx = np.array([[0, 0, 0, 0], [4, 1, 2, 3], [4, 1, 2, 0]])
        tensor = CooTensor(idx, np.array([1.5, -2.0, 3.0]), (6, 3, 4, 5))
        rng = np.random.default_rng(0)
        factors = random_factors(rng, tensor.shape, rank)
        engine = MemoizedMttkrp(tensor, "bdt", factors, kernel=backend)
        for mode in range(4):
            out = engine.mttkrp(mode)
            np.testing.assert_allclose(
                out, naive_mttkrp(tensor, factors, mode),
                rtol=AGREEMENT_RTOL, atol=AGREEMENT_RTOL,
            )
        np.testing.assert_array_equal(engine.mttkrp(0)[1:4], 0.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_tensor(self, backend):
        tensor = CooTensor.empty((3, 4, 5))
        factors = random_factors(np.random.default_rng(0), tensor.shape, 8)
        engine = MemoizedMttkrp(tensor, "bdt", factors, kernel=backend)
        for mode in range(3):
            np.testing.assert_array_equal(engine.mttkrp(mode), 0.0)

    def test_numpy_bitwise_identical_to_reference(self):
        """The default backend reorders passes but not arithmetic: outputs
        must be *bitwise* equal to the seed path, across invalidations."""
        rng = np.random.default_rng(7)
        tensor = random_coo(rng, (20, 31, 17, 24), 800)
        factors = random_factors(rng, tensor.shape, 16)
        strategies = [S.balanced_binary(4), S.star(4),
                      S.from_nested(((0, 2), (1, 3)))]
        for strategy in strategies:
            ref = MemoizedMttkrp(tensor, strategy, factors, kernel="reference")
            new = MemoizedMttkrp(tensor, strategy, factors, kernel="numpy")
            for _ in range(2):
                for mode in ref.mode_order:
                    np.testing.assert_array_equal(
                        ref.mttkrp(mode), new.mttkrp(mode)
                    )
                    U = rng.standard_normal((tensor.shape[mode], 16))
                    ref.update_factor(mode, U)
                    new.update_factor(mode, U)


# ---------------------------------------------------------------------------
# perf-counter parity: the cost-model invariant is backend-independent
# ---------------------------------------------------------------------------

class TestCounterParity:
    @pytest.mark.parametrize("order", [3, 4, 5])
    def test_identical_counters_across_backends(self, order):
        rng = np.random.default_rng(order)
        shape = tuple([6] * order)
        tensor = random_coo(rng, shape, 80)
        factors = random_factors(rng, shape, 4)
        snapshots = {}
        for backend in BACKENDS:
            engine = MemoizedMttkrp(
                tensor, strategy_for(order), factors, kernel=backend
            )
            updates = np.random.default_rng(99)  # same updates per backend
            for n in engine.mode_order:  # warm-up to steady state
                engine.mttkrp(n)
                engine.update_factor(
                    n, updates.standard_normal((shape[n], 4))
                )
            with counting() as c:
                for n in engine.mode_order:
                    engine.mttkrp(n)
                    engine.update_factor(
                        n, updates.standard_normal((shape[n], 4))
                    )
            snapshots[backend] = c.snapshot()
        reference = snapshots[BACKENDS[0]]
        for backend, snap in snapshots.items():
            assert snap == reference, f"{backend} counters diverge"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert get_kernel().name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        assert get_kernel().name == "reference"
        engine = MemoizedMttkrp(CooTensor.empty((2, 2, 2)), "star")
        assert engine.kernel.name == "reference"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        assert get_kernel("numpy").name == "numpy"

    def test_instance_passthrough(self):
        inst = get_kernel("numpy")
        assert get_kernel(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_kernel("no-such-kernel")

    def test_unavailable_backend_falls_back_with_warning(self):
        if "numba" in BACKENDS:
            pytest.skip("numba installed: fallback path not reachable")
        assert "numba" in unavailable_kernels()
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_kernel("numba")
        assert backend.name == "numpy"

    def test_available_lists_default_first(self):
        assert BACKENDS[0] == "numpy"
        assert "reference" in BACKENDS

    def test_backend_is_kernel_backend(self):
        for name in BACKENDS:
            assert isinstance(get_kernel(name), KernelBackend)


# ---------------------------------------------------------------------------
# workspace arena
# ---------------------------------------------------------------------------

class TestWorkspaceArena:
    def test_reuses_buffer_across_requests(self):
        arena = WorkspaceArena()
        a = arena.request("prod", 100, 8)
        b = arena.request("prod", 50, 8)
        assert b.base is a.base  # same backing allocation
        assert b.shape == (50, 8)

    def test_grows_when_needed(self):
        arena = WorkspaceArena()
        small = arena.request("prod", 10, 4)
        big = arena.request("prod", 5000, 4)
        assert big.shape == (5000, 4)
        assert big.base is not small.base

    def test_column_change_reallocates(self):
        arena = WorkspaceArena()
        arena.request("prod", 10, 4)
        wide = arena.request("prod", 10, 8)
        assert wide.shape == (10, 8)

    def test_nbytes_and_clear(self):
        arena = WorkspaceArena()
        arena.request("prod", 2048, 8)
        assert arena.nbytes() >= 2048 * 8 * 8
        arena.clear()
        assert arena.nbytes() == 0

    def test_engine_reports_workspace(self):
        rng = np.random.default_rng(0)
        tensor = random_coo(rng, (6, 6, 6, 6), 200)
        engine = MemoizedMttkrp(
            tensor, "bdt", random_factors(rng, tensor.shape, 4)
        )
        engine.mttkrp(0)
        assert engine.workspace_nbytes() >= 0


# ---------------------------------------------------------------------------
# blocking
# ---------------------------------------------------------------------------

class TestBlocking:
    def test_blocks_partition_sources_and_segments(self):
        rng = np.random.default_rng(0)
        targets = np.sort(rng.integers(0, 500, 4000))
        starts = np.flatnonzero(
            np.concatenate(([True], targets[1:] != targets[:-1]))
        ).astype(np.intp)
        blocks = list(segment_blocks(starts, 4000, 256))
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 4000
        for (_lo, hi, _sl, sh, _ls), (lo2, _h2, sl2, _s2, _l2) in zip(
            blocks, blocks[1:]
        ):
            assert hi == lo2 and sh == sl2
        # local starts reproduce the segment structure exactly
        rebuilt = np.concatenate([ls + lo for lo, _, _, _, ls in blocks])
        np.testing.assert_array_equal(rebuilt, starts)

    def test_oversized_segment_taken_whole(self):
        starts = np.array([0, 10_000], dtype=np.intp)
        blocks = list(segment_blocks(starts, 10_050, 256))
        assert blocks[0][:2] == (0, 10_000)
        assert blocks[1][:2] == (10_000, 10_050)

    def test_zero_block_rows_is_unblocked(self):
        starts = np.arange(0, 100, 10, dtype=np.intp)
        blocks = list(segment_blocks(starts, 100, 0))
        assert len(blocks) == 1
        assert blocks[0][:4] == (0, 100, 0, 10)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "12345")
        assert resolve_block_rows(16) == 12345
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "0")
        assert resolve_block_rows(16) == 0

    def test_default_heuristic_sane(self):
        for rank in (1, 8, 16, 64, 256):
            rows = default_block_rows(rank)
            assert 1024 <= rows <= 1 << 18

    def test_autotune_returns_candidate_and_caches(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BLOCK", raising=False)
        clear_tuning_cache()
        chosen = autotune_block_rows(
            4, candidates=(1024, 8192), sample_rows=20_000, repeats=1
        )
        assert chosen in (0, 1024, 8192)
        assert resolve_block_rows(4) == chosen
        clear_tuning_cache()

    def test_blocked_equals_unblocked_bitwise(self, monkeypatch):
        rng = np.random.default_rng(3)
        tensor = random_coo(rng, (15, 12, 18, 9), 3000)
        factors = random_factors(rng, tensor.shape, 8)
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "0")
        unblocked = MemoizedMttkrp(tensor, "bdt", factors).mttkrp(2)
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "64")
        blocked = MemoizedMttkrp(tensor, "bdt", factors).mttkrp(2)
        np.testing.assert_array_equal(unblocked, blocked)


# ---------------------------------------------------------------------------
# parallel engine through the kernel layer + context managers
# ---------------------------------------------------------------------------

class TestParallelKernels:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunked_rebuild_matches_sequential(self, backend):
        rng = np.random.default_rng(5)
        tensor = random_coo(rng, (12, 14, 10, 11), 4000)
        factors = random_factors(rng, tensor.shape, 8)
        sequential = MemoizedMttkrp(tensor, "bdt", factors, kernel=backend)
        with ParallelMemoizedMttkrp(
            tensor, "bdt", factors, n_workers=3, min_chunk_rows=4,
            kernel=backend,
        ) as par:
            for mode in sequential.mode_order:
                np.testing.assert_allclose(
                    par.mttkrp(mode), sequential.mttkrp(mode),
                    rtol=AGREEMENT_RTOL, atol=AGREEMENT_RTOL,
                )

    def test_context_manager_closes_owned_pool(self):
        tensor = random_coo(np.random.default_rng(0), (5, 5, 5), 50)
        with ParallelMemoizedMttkrp(tensor, "star", n_workers=2) as eng:
            assert eng.pool._executor is not None
        assert eng.pool._executor is None

    def test_context_manager_leaves_shared_pool_open(self):
        from repro.parallel import WorkerPool

        tensor = random_coo(np.random.default_rng(0), (5, 5, 5), 50)
        with WorkerPool(2) as pool:
            with ParallelMemoizedMttkrp(tensor, "star", pool=pool) as eng:
                pass
            assert pool._executor is not None

    def test_parallel_coo_context_manager(self):
        rng = np.random.default_rng(1)
        tensor = random_coo(rng, (6, 7, 8), 200)
        factors = random_factors(rng, tensor.shape, 4)
        with ParallelCooMttkrp(tensor, n_workers=2) as backend:
            backend.set_factors(factors)
            np.testing.assert_allclose(
                backend.mttkrp(0), naive_mttkrp(tensor, factors, 0),
                rtol=AGREEMENT_RTOL, atol=AGREEMENT_RTOL,
            )
        assert backend.pool._executor is None


# ---------------------------------------------------------------------------
# kernel index caching on the symbolic tree
# ---------------------------------------------------------------------------

class TestKernelIndexCache:
    def test_cached_and_shared_across_engines(self):
        rng = np.random.default_rng(2)
        tensor = random_coo(rng, (8, 8, 8, 8), 300)
        sym = SymbolicTree(tensor, S.balanced_binary(4))
        factors = random_factors(rng, tensor.shape, 4)
        e1 = MemoizedMttkrp(tensor, S.balanced_binary(4), factors, symbolic=sym)
        e2 = MemoizedMttkrp(tensor, S.balanced_binary(4), factors, symbolic=sym)
        e1.mttkrp(0)
        e2.mttkrp(0)
        leaf = sym.strategy.leaf_id(0)
        assert sym.kernel_index(leaf) is sym.kernel_index(leaf)
        assert sym.kernel_index(sym.strategy.root_id) is None

    def test_eager_build_and_accounting(self):
        rng = np.random.default_rng(3)
        tensor = random_coo(rng, (8, 8, 8), 200)
        sym = SymbolicTree(tensor, S.balanced_binary(3))
        assert sym.kernel_index_nbytes() == 0
        sym.build_kernel_indices()
        assert sym.kernel_index_nbytes() > 0
        # excluded from the model-checked symbolic index bytes
        from repro.model.cost import symbolic_index_bytes

        assert symbolic_index_bytes(
            sym.strategy, sym.node_nnz()
        ) == sym.index_nbytes()

    def test_gather_arrays_are_flat_and_permuted(self):
        rng = np.random.default_rng(4)
        tensor = random_coo(rng, (9, 7, 8, 6), 250)
        sym = SymbolicTree(tensor, S.balanced_binary(4))
        for node in sym.strategy.nodes:
            if node.is_root:
                continue
            ki = sym.kernel_index(node.id)
            plan = sym.nodes[node.id].plan
            parent_index = sym.nodes[node.parent].index
            for g, d_col in zip(
                ki.gather, sym.nodes[node.id].delta_parent_cols
            ):
                assert g.flags.c_contiguous
                expected = parent_index[:, d_col][plan.perm]
                np.testing.assert_array_equal(g, expected)
