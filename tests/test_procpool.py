"""Tests for the process-parallel tier (repro.parallel.procpool + shm).

Covers the data plane (shared-memory lifecycle, no leaked segments on any
path), the numeric contract (deterministic shard reduction, bitwise layout
parity, agreement with the dense reference), the instrumentation shape
(``pool_task`` spans, ``pool.imbalance``), and crash-proofing (worker
death -> structured warning + thread-tier fallback).

Worker counts here deliberately exceed small CI machines' cpu counts —
every pool is built with ``allow_oversubscribe=True`` (or sized 1) so the
tests exercise real multi-process pools everywhere.
"""

import os
import warnings

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.parallel import ParallelCooMttkrp
from repro.parallel.procpool import ProcessMttkrp, ProcessPool
from repro.parallel.shm import (SharedArrayGroup, SharedArraySpec,
                                attach_array, detach_all, n_attached)

from .helpers import dense_mttkrp, random_coo, random_factors


def make_pool(n_workers):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ProcessPool(n_workers, allow_oversubscribe=True)


def make_backend(tensor, n_workers, **kw):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ProcessMttkrp(
            tensor, n_workers, allow_oversubscribe=True, **kw
        )


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _exit_hard(x):
    os._exit(13)


class TestSharedMemory:
    def test_spec_pickles_flat(self):
        import pickle

        spec = SharedArraySpec("seg", (3, 4), "<f8")
        clone = pickle.loads(pickle.dumps(spec))
        assert (clone.name, clone.shape, clone.dtype) == ("seg", (3, 4), "<f8")

    def test_put_and_readback(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((7, 5))
        with SharedArrayGroup() as group:
            view = group.put("x", data)
            np.testing.assert_array_equal(view, data)
            assert "x" in group
            assert group.nbytes() == data.nbytes
            # In-place update through the view, as update_factor does.
            np.copyto(view, data * 2)
            np.testing.assert_array_equal(group.array("x"), data * 2)

    def test_put_shape_mismatch_rejected(self):
        with SharedArrayGroup() as group:
            group.put("x", np.zeros((2, 2)))
            with pytest.raises(ValueError, match="exists with shape"):
                group.put("x", np.zeros((3, 3)))

    def test_attach_in_same_process(self):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        with SharedArrayGroup() as group:
            group.put("x", data)
            before = n_attached()
            view = attach_array(group.spec("x"))
            np.testing.assert_array_equal(view, data)
            assert n_attached() == before + 1
            # Cached: same segment attaches once.
            attach_array(group.spec("x"))
            assert n_attached() == before + 1
        detach_all()
        assert n_attached() == 0

    def test_close_unlinks_segments(self):
        group = SharedArrayGroup()
        group.put("x", np.zeros(10))
        name = group.spec("x").name
        group.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_idempotent_and_finalizer_safe(self):
        group = SharedArrayGroup()
        group.put("x", np.zeros(4))
        group.close()
        group.close()  # second close is a no-op
        del group  # finalizer on an already-closed group must not raise

    def test_collection_unlinks_without_close(self):
        """The weakref finalizer reclaims segments when close() was never
        called (crashed run, sloppy test)."""
        import gc

        group = SharedArrayGroup()
        group.put("x", np.zeros(16))
        name = group.spec("x").name
        del group
        gc.collect()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestProcessPool:
    def test_single_worker_inline(self):
        pool = make_pool(1)
        assert pool.run([(_square, (3,)), (_square, (4,))]) == [9, 16]
        pool.close()

    def test_multi_worker_ordered_results(self):
        with make_pool(2) as pool:
            results = pool.run([(_square, (i,)) for i in range(8)])
        assert results == [i * i for i in range(8)]

    def test_exception_propagates(self):
        with make_pool(2) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.run([(_boom, (1,)), (_boom, (2,))])

    def test_pool_task_spans_measured_from_workers(self):
        from repro.obs import trace

        with make_pool(2) as pool, trace.tracing() as tracer:
            pool.run([(_square, (i,)) for i in range(4)])
        spans = [s for s in tracer.finished() if s.kind == "pool_task"]
        assert len(spans) == 4
        assert sorted(s.attrs["index"] for s in spans) == [0, 1, 2, 3]
        parent_pid = os.getpid()
        for s in spans:
            # The thread tier's attribute shape plus provenance.
            assert set(s.attrs) == {"index", "worker", "queue_wait",
                                    "source", "pid"}
            assert s.attrs["queue_wait"] >= 0.0
            assert s.duration >= 0.0
            # In-worker capture: genuinely measured, in a child process.
            assert s.attrs["source"] == "measured"
            assert s.attrs["pid"] != parent_pid
        workers = {s.attrs["worker"] for s in spans}
        assert workers <= {0, 1}  # stable lane ids, first-seen

    def test_pool_task_spans_synthesized_without_capture(self):
        from repro.obs import trace

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            pool = ProcessPool(2, allow_oversubscribe=True, capture=False)
        with pool, trace.tracing() as tracer:
            pool.run([(_square, (i,)) for i in range(4)])
        spans = [s for s in tracer.finished() if s.kind == "pool_task"]
        assert len(spans) == 4
        for s in spans:
            assert s.attrs["source"] == "synthesized"
            assert s.attrs["pid"] != os.getpid()

    def test_imbalance_gauge_published(self):
        from repro.obs.metrics import registry

        registry.reset()
        with make_pool(2) as pool:
            pool.run([(_square, (i,)) for i in range(4)])
        assert registry.snapshot()["gauges"]["pool.imbalance"] >= 1.0

    def test_worker_count_resolution_clamps(self):
        ncpu = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning, match="clamping"):
            pool = ProcessPool(ncpu + 7)
        assert pool.n_workers == ncpu
        pool.close()

    def test_oversubscribe_optout_keeps_count(self):
        ncpu = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning, match="oversubscribes"):
            pool = ProcessPool(ncpu + 1, allow_oversubscribe=True)
        assert pool.n_workers == ncpu + 1
        pool.close()


class TestProcessMttkrp:
    @pytest.mark.parametrize("n_workers", [1, 3])
    @pytest.mark.parametrize("layout", ["numpy", "alto"])
    def test_matches_dense(self, n_workers, layout):
        rng = np.random.default_rng(42)
        shape = (9, 7, 6, 5)
        tensor = random_coo(rng, shape, 250)
        factors = random_factors(rng, shape, 6)
        dense = tensor.to_dense()
        with make_backend(tensor, n_workers, layout=layout) as backend:
            backend.set_factors(factors)
            for mode in range(tensor.ndim):
                np.testing.assert_allclose(
                    backend.mttkrp(mode),
                    dense_mttkrp(dense, factors, mode),
                    rtol=1e-10, atol=1e-10,
                )

    def test_layouts_bitwise_identical(self):
        rng = np.random.default_rng(7)
        tensor = random_coo(rng, (20, 15, 12, 9), 800)
        factors = random_factors(rng, tensor.shape, 8)
        with make_backend(tensor, 3, layout="numpy") as a, \
                make_backend(tensor, 3, layout="alto") as b:
            a.set_factors(factors)
            b.set_factors(factors)
            assert a.chunks == b.chunks  # layout-independent shards
            for mode in range(tensor.ndim):
                np.testing.assert_array_equal(a.mttkrp(mode), b.mttkrp(mode))

    def test_deterministic_across_runs(self):
        """Same inputs, same worker count -> identical bits, twice."""
        rng = np.random.default_rng(9)
        tensor = random_coo(rng, (16, 13, 11), 500)
        factors = random_factors(rng, tensor.shape, 8)
        outs = []
        for _ in range(2):
            with make_backend(tensor, 3) as backend:
                backend.set_factors(factors)
                outs.append([backend.mttkrp(m) for m in range(3)])
        for a, b in zip(*outs):
            np.testing.assert_array_equal(a, b)

    def test_shard_reduction_order_matches_thread_tier(self):
        """Non-leading modes reduce per-shard slabs in shard order — the
        exact partial order of the thread tier on the same chunks."""
        rng = np.random.default_rng(10)
        tensor = random_coo(rng, (14, 12, 10), 400)
        factors = random_factors(rng, tensor.shape, 8)
        with make_backend(tensor, 3) as backend:
            backend.set_factors(factors)
            ref = ParallelCooMttkrp(tensor, n_workers=1)
            ref.chunks = list(backend.chunks)
            ref.set_factors(factors)
            for mode in range(1, tensor.ndim):
                np.testing.assert_array_equal(
                    backend.mttkrp(mode), ref.mttkrp(mode)
                )
            ref.close()

    def test_mode0_direct_write_matches_single_shard(self):
        """Aligned shards never split a mode-0 row, so the conflict-free
        direct write equals the single-worker whole-range scatter."""
        rng = np.random.default_rng(12)
        tensor = random_coo(rng, (10, 9, 8), 300)
        factors = random_factors(rng, tensor.shape, 5)
        with make_backend(tensor, 1) as one, make_backend(tensor, 4) as many:
            one.set_factors(factors)
            many.set_factors(factors)
            np.testing.assert_array_equal(one.mttkrp(0), many.mttkrp(0))

    def test_factor_updates_propagate(self):
        rng = np.random.default_rng(14)
        tensor = random_coo(rng, (8, 7, 6), 120)
        factors = random_factors(rng, tensor.shape, 4)
        with make_backend(tensor, 2) as backend:
            backend.set_factors(factors)
            backend.mttkrp(1)
            new0 = rng.standard_normal(factors[0].shape)
            backend.update_factor(0, new0)
            expected = ParallelCooMttkrp(tensor, n_workers=1)
            expected.chunks = list(backend.chunks)
            expected.set_factors([new0] + factors[1:])
            np.testing.assert_array_equal(
                backend.mttkrp(1), expected.mttkrp(1)
            )
            expected.close()

    def test_update_factor_validates_shape(self):
        rng = np.random.default_rng(15)
        tensor = random_coo(rng, (6, 5, 4), 60)
        with make_backend(tensor, 1) as backend:
            backend.set_factors(random_factors(rng, tensor.shape, 4))
            with pytest.raises(ValueError, match="factor for mode"):
                backend.update_factor(0, np.zeros((6, 7)))

    def test_empty_tensor(self):
        tensor = CooTensor.empty((4, 5, 6))
        with make_backend(tensor, 2) as backend:
            backend.set_factors(
                random_factors(np.random.default_rng(0), tensor.shape, 3)
            )
            for mode in range(3):
                np.testing.assert_array_equal(backend.mttkrp(mode), 0.0)

    def test_alto_layout_rejected_when_overflowing(self):
        tensor = CooTensor.empty((1 << 32, 1 << 32))
        with pytest.raises(ValueError, match="63 index bits"):
            make_backend(tensor, 1, layout="alto")

    def test_invalid_layout_rejected(self):
        tensor = CooTensor.empty((4, 4))
        with pytest.raises(ValueError, match="layout must be"):
            make_backend(tensor, 1, layout="csf")

    def test_close_releases_segments(self):
        rng = np.random.default_rng(16)
        tensor = random_coo(rng, (8, 7, 6), 100)
        backend = make_backend(tensor, 2)
        backend.set_factors(random_factors(rng, tensor.shape, 4))
        backend.mttkrp(0)
        names = [s.name for s in backend._shm.specs().values()]
        assert names
        backend.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_segments_released_when_set_factors_fails(self):
        """Error paths must not leak: the finalizer covers construction
        followed by a validation failure and no close()."""
        import gc

        rng = np.random.default_rng(17)
        tensor = random_coo(rng, (8, 7, 6), 100)
        backend = make_backend(tensor, 2)
        names = [s.name for s in backend._shm.specs().values()]
        with pytest.raises(ValueError):
            backend.set_factors([np.zeros((1, 1))] * 3)  # wrong shapes
        del backend
        gc.collect()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestCrashFallback:
    def test_worker_death_falls_back_to_threads(self):
        """A dying worker process must surface a structured warning and
        permanently reroute to an equivalent thread-tier backend."""
        from repro.obs import events as obs_events

        rng = np.random.default_rng(19)
        tensor = random_coo(rng, (12, 10, 8), 300)
        factors = random_factors(rng, tensor.shape, 6)
        backend = make_backend(tensor, 2)
        try:
            backend.set_factors(factors)
            expected = [backend.mttkrp(m) for m in range(3)]
            # Kill the pool out from under the backend.
            obs_events.enable(clear=True)
            try:
                with pytest.warns(RuntimeWarning, match="falling back"):
                    try:
                        backend.pool.run([(_exit_hard, (0,))] * 2)
                    except Exception as exc:
                        backend._activate_fallback(exc)
                events = obs_events.get_log().tail()
            finally:
                obs_events.disable()
            assert backend._fallback is not None
            warnings_seen = [e for e in events if e["kind"] == "warning"]
            assert warnings_seen
            assert warnings_seen[0]["tier"] == "process"
            assert warnings_seen[0]["fallback"] == "thread"
            # Same chunks + same factors: results unchanged, bit for bit.
            for mode in range(3):
                np.testing.assert_array_equal(
                    backend.mttkrp(mode), expected[mode]
                )
            # Updates keep flowing through the shared views.
            new1 = rng.standard_normal(factors[1].shape)
            backend.update_factor(1, new1)
            check = ParallelCooMttkrp(tensor, n_workers=1)
            check.chunks = list(backend.chunks)
            check.set_factors([factors[0], new1, factors[2]])
            np.testing.assert_array_equal(backend.mttkrp(2), check.mttkrp(2))
            check.close()
        finally:
            backend.close()

    def test_broken_pool_mid_mttkrp(self):
        """The BrokenProcessPool path inside mttkrp() itself: the same
        call that hit the crash still returns the correct answer."""
        from concurrent.futures.process import BrokenProcessPool

        rng = np.random.default_rng(20)
        tensor = random_coo(rng, (12, 10, 8), 300)
        factors = random_factors(rng, tensor.shape, 6)
        backend = make_backend(tensor, 2)
        try:
            backend.set_factors(factors)
            expected = backend.mttkrp(1)
            # Poison the executor so the next dispatch raises.
            try:
                backend.pool.run([(_exit_hard, (0,))] * 2)
            except BrokenProcessPool:
                pass
            with pytest.warns(RuntimeWarning, match="falling back"):
                out = backend.mttkrp(1)
            np.testing.assert_array_equal(out, expected)
        finally:
            backend.close()
