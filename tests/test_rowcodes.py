"""Unit tests for repro.core.rowcodes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import rowcodes


class TestFitsInt64:
    def test_small_dims_fit(self):
        assert rowcodes.fits_int64([10, 20, 30])

    def test_empty_dims_fit(self):
        assert rowcodes.fits_int64([])

    def test_huge_product_does_not_fit(self):
        assert not rowcodes.fits_int64([2**40, 2**40])

    def test_boundary(self):
        assert rowcodes.fits_int64([2**62])
        assert not rowcodes.fits_int64([2**62, 4])


class TestEncodeRows:
    def test_row_major_order(self):
        idx = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int64)
        codes = rowcodes.encode_rows(idx, [2, 3])
        assert codes.tolist() == [0, 1, 3]

    def test_matches_lexicographic_order(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 7, size=(50, 3)).astype(np.int64)
        codes = rowcodes.encode_rows(idx, [7, 7, 7])
        by_code = np.argsort(codes, kind="stable")
        by_lex = rowcodes.lexsort_rows(idx)
        assert np.array_equal(idx[by_code], idx[by_lex])

    def test_column_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            rowcodes.encode_rows(np.zeros((2, 2), dtype=np.int64), [5])

    def test_overflow_raises(self):
        idx = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(OverflowError):
            rowcodes.encode_rows(idx, [2**40, 2**40])

    def test_zero_columns(self):
        codes = rowcodes.encode_rows(np.zeros((4, 0), dtype=np.int64), [])
        assert codes.tolist() == [0, 0, 0, 0]

    def test_codes_unique_iff_rows_unique(self):
        idx = np.array([[1, 2], [1, 2], [2, 1]], dtype=np.int64)
        codes = rowcodes.encode_rows(idx, [4, 4])
        assert codes[0] == codes[1] != codes[2]


class TestGroupRows:
    def test_basic_grouping(self):
        idx = np.array([[1, 1], [0, 0], [1, 1], [0, 1]], dtype=np.int64)
        unique_rows, inverse = rowcodes.group_rows(idx, [2, 2])
        assert unique_rows.tolist() == [[0, 0], [0, 1], [1, 1]]
        assert inverse.tolist() == [2, 0, 2, 1]

    def test_reconstruction_property(self):
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 5, size=(200, 4)).astype(np.int64)
        unique_rows, inverse = rowcodes.group_rows(idx, [5] * 4)
        assert np.array_equal(unique_rows[inverse], idx)

    def test_unique_rows_sorted(self):
        rng = np.random.default_rng(2)
        idx = rng.integers(0, 4, size=(100, 3)).astype(np.int64)
        unique_rows, _ = rowcodes.group_rows(idx, [4] * 3)
        order = rowcodes.lexsort_rows(unique_rows)
        assert np.array_equal(order, np.arange(unique_rows.shape[0]))

    def test_empty_input(self):
        idx = np.zeros((0, 3), dtype=np.int64)
        unique_rows, inverse = rowcodes.group_rows(idx, [4] * 3)
        assert unique_rows.shape == (0, 3)
        assert inverse.shape == (0,)

    def test_matches_np_unique_on_fallback_path(self):
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 3, size=(60, 2)).astype(np.int64)
        # Force the lexicographic fallback with oversized dims.
        u1, inv1 = rowcodes.group_rows(idx, [2**40, 2**40])
        u2, inv2 = np.unique(idx, axis=0, return_inverse=True)
        assert np.array_equal(u1, u2)
        assert np.array_equal(inv1, inv2.ravel())

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)),
            min_size=0, max_size=80,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_np_unique(self, rows):
        idx = np.array(rows, dtype=np.int64).reshape(len(rows), 3)
        u1, inv1 = rowcodes.group_rows(idx, [7, 7, 7])
        if len(rows):
            u2, inv2 = np.unique(idx, axis=0, return_inverse=True)
            assert np.array_equal(u1, u2)
            assert np.array_equal(inv1, inv2.ravel())
        else:
            assert u1.shape[0] == 0


class TestCountDistinctRows:
    def test_counts(self):
        idx = np.array([[0, 0], [0, 0], [1, 0]], dtype=np.int64)
        assert rowcodes.count_distinct_rows(idx, [2, 2]) == 2

    def test_empty(self):
        assert rowcodes.count_distinct_rows(np.zeros((0, 2), np.int64), [2, 2]) == 0

    def test_zero_columns_counts_one(self):
        assert rowcodes.count_distinct_rows(np.zeros((5, 0), np.int64), []) == 1

    def test_agrees_with_group_rows(self):
        rng = np.random.default_rng(4)
        idx = rng.integers(0, 9, size=(300, 3)).astype(np.int64)
        u, _ = rowcodes.group_rows(idx, [9] * 3)
        assert rowcodes.count_distinct_rows(idx, [9] * 3) == u.shape[0]
