"""Tests for repro.core.semisparse."""

import numpy as np
import pytest

from repro.core.semisparse import SemiSparseTensor


def make(modes=(1, 3), nnz=4, rank=3, sizes=(5, 6)):
    rng = np.random.default_rng(0)
    idx = np.column_stack([rng.integers(0, s, nnz) for s in sizes])
    vals = rng.standard_normal((nnz, rank))
    return SemiSparseTensor(modes, idx, vals, sizes), idx, vals


class TestConstruction:
    def test_basic(self):
        t, idx, vals = make()
        assert t.nnz == 4
        assert t.rank == 3
        assert t.modes == (1, 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SemiSparseTensor((0,), np.zeros((2, 2), np.int64),
                             np.zeros((2, 3)), (4,))
        with pytest.raises(ValueError):
            SemiSparseTensor((0, 1), np.zeros((2, 2), np.int64),
                             np.zeros((3, 3)), (4, 4))
        with pytest.raises(ValueError):
            SemiSparseTensor((0, 1), np.zeros((2, 2), np.int64),
                             np.zeros((2, 3)), (4,))

    def test_nbytes(self):
        t, _, _ = make()
        assert t.nbytes() == t.idx.nbytes + t.vals.nbytes


class TestToMatrix:
    def test_single_mode_scatter(self):
        idx = np.array([[1], [3]], dtype=np.int64)
        vals = np.array([[1.0, 2.0], [3.0, 4.0]])
        t = SemiSparseTensor((0,), idx, vals, (5,))
        M = t.to_matrix()
        assert M.shape == (5, 2)
        np.testing.assert_allclose(M[1], [1.0, 2.0])
        np.testing.assert_allclose(M[3], [3.0, 4.0])
        np.testing.assert_allclose(M[[0, 2, 4]], 0.0)

    def test_explicit_size(self):
        idx = np.array([[0]], dtype=np.int64)
        t = SemiSparseTensor((2,), idx, np.ones((1, 1)), (3,))
        assert t.to_matrix(size=10).shape == (10, 1)

    def test_multi_mode_rejected(self):
        t, _, _ = make()
        with pytest.raises(ValueError):
            t.to_matrix()


class TestToDenseStack:
    def test_roundtrip(self):
        t, idx, vals = make(nnz=3, sizes=(4, 5))
        dense = t.to_dense_stack()
        assert dense.shape == (4, 5, 3)
        for row, v in zip(idx, vals):
            np.testing.assert_allclose(dense[tuple(row)], v)
