"""Tests for repro.core.kruskal."""

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.core.kruskal import KruskalTensor

from .helpers import random_factors


def make_model(shape=(4, 5, 3), rank=3, seed=0):
    rng = np.random.default_rng(seed)
    factors = random_factors(rng, shape, rank)
    weights = rng.random(rank) + 0.5
    return KruskalTensor(weights, factors)


class TestConstruction:
    def test_basic(self):
        m = make_model()
        assert m.rank == 3
        assert m.shape == (4, 5, 3)
        assert m.ndim == 3

    def test_weight_shape_validation(self):
        rng = np.random.default_rng(1)
        factors = random_factors(rng, (3, 4), 2)
        with pytest.raises(ValueError):
            KruskalTensor(np.ones(3), factors)

    def test_rank_mismatch_across_factors(self):
        with pytest.raises(ValueError):
            KruskalTensor(np.ones(2), [np.ones((3, 2)), np.ones((4, 3))])

    def test_from_factors_unit_weights(self):
        m = KruskalTensor.from_factors([np.ones((2, 2)), np.ones((3, 2))])
        np.testing.assert_array_equal(m.weights, 1.0)

    def test_copy_semantics(self):
        U = np.ones((2, 1))
        m = KruskalTensor(np.ones(1), [U, U.copy()])
        U[0, 0] = 99.0
        assert m.factors[0][0, 0] == 1.0


class TestEvaluation:
    def test_to_dense_matches_outer_products(self):
        m = make_model(shape=(3, 4), rank=2, seed=2)
        expected = sum(
            m.weights[r] * np.outer(m.factors[0][:, r], m.factors[1][:, r])
            for r in range(2)
        )
        np.testing.assert_allclose(m.to_dense(), expected, atol=1e-12)

    def test_values_at_matches_dense(self):
        m = make_model(seed=3)
        dense = m.to_dense()
        coords = np.array([[0, 0, 0], [3, 4, 2], [1, 2, 1]])
        np.testing.assert_allclose(
            m.values_at(coords),
            [dense[tuple(c)] for c in coords],
            atol=1e-12,
        )

    def test_norm_matches_dense(self):
        m = make_model(seed=4)
        assert m.norm() == pytest.approx(np.linalg.norm(m.to_dense()))

    def test_fit_perfect_model(self):
        m = make_model(seed=5)
        t = CooTensor.from_dense(m.to_dense())
        assert m.fit(t) == pytest.approx(1.0, abs=1e-8)

    def test_fit_zero_tensor(self):
        m = make_model(seed=6)
        t = CooTensor.empty(m.shape)
        assert m.fit(t) == float("-inf")
        zero_model = KruskalTensor(
            np.zeros(2), [np.zeros((s, 2)) for s in (2, 2)]
        )
        assert zero_model.fit(CooTensor.empty((2, 2))) == 1.0

    def test_astype_coo_roundtrip(self):
        m = make_model(shape=(3, 3), rank=1, seed=7)
        np.testing.assert_allclose(
            m.astype_coo().to_dense(), m.to_dense(), atol=1e-12
        )


class TestCanonicalForms:
    def test_normalize_preserves_tensor(self):
        m = make_model(seed=8)
        n = m.normalize()
        np.testing.assert_allclose(n.to_dense(), m.to_dense(), atol=1e-10)
        for U in n.factors:
            norms = np.sqrt((U**2).sum(axis=0))
            np.testing.assert_allclose(norms, 1.0, atol=1e-10)

    def test_arrange_sorts_weights(self):
        m = make_model(seed=9)
        a = m.arrange()
        w = np.abs(a.weights)
        assert (w[:-1] >= w[1:]).all()
        np.testing.assert_allclose(a.to_dense(), m.to_dense(), atol=1e-10)

    def test_congruence_identity(self):
        m = make_model(seed=10)
        assert m.congruence(m) == pytest.approx(1.0)

    def test_congruence_permutation_invariant(self):
        m = make_model(seed=11)
        perm = [2, 0, 1]
        permuted = KruskalTensor(
            m.weights[perm], [U[:, perm] for U in m.factors]
        )
        assert m.congruence(permuted) == pytest.approx(1.0)

    def test_congruence_scaling_invariant(self):
        m = make_model(seed=12)
        scaled = KruskalTensor(
            m.weights * 7.0, [U.copy() for U in m.factors]
        )
        assert m.congruence(scaled) == pytest.approx(1.0)

    def test_congruence_detects_mismatch(self):
        a = make_model(seed=13)
        b = make_model(seed=14)
        assert a.congruence(b) < 0.9

    def test_congruence_shape_check(self):
        a = make_model(shape=(3, 3, 3))
        b = make_model(shape=(4, 4, 4))
        with pytest.raises(ValueError):
            a.congruence(b)
