"""Tests for the higher-level algorithms (repro.algos)."""

import numpy as np
import pytest

from repro.algos import (complete, cp_als_restarts, cp_nmu, holdout_split,
                         select_rank)
from repro.core.coo import CooTensor
from repro.core.engine import MemoizedMttkrp
from repro.synth.lowrank import lowrank_tensor, random_kruskal

from .helpers import random_coo


@pytest.fixture(scope="module")
def nonneg_planted():
    shape = (10, 9, 8, 7)
    return lowrank_tensor(shape, rank=3, nnz=int(np.prod(shape)),
                          nonneg=True, random_state=0)


class TestCpNmu:
    def test_fit_monotone_nondecreasing(self, nonneg_planted):
        result = cp_nmu(nonneg_planted.tensor, rank=3, n_iter_max=25,
                        tol=0.0, random_state=1)
        fits = np.array(result.fits)
        assert (np.diff(fits) >= -1e-7).all(), fits

    def test_factors_nonnegative(self, nonneg_planted):
        result = cp_nmu(nonneg_planted.tensor, rank=3, n_iter_max=15,
                        random_state=2)
        for U in result.ktensor.factors:
            assert (U >= 0).all()
        assert (result.ktensor.weights >= 0).all()

    def test_reasonable_fit_on_nonneg_lowrank(self, nonneg_planted):
        result = cp_nmu(nonneg_planted.tensor, rank=3, n_iter_max=150,
                        tol=1e-9, random_state=3)
        assert result.fit > 0.9

    def test_negative_tensor_rejected(self):
        t = CooTensor([[0, 0]], [-1.0], (2, 2))
        with pytest.raises(ValueError, match="nonnegative"):
            cp_nmu(t, rank=1)

    def test_strategies_agree(self, nonneg_planted):
        a = cp_nmu(nonneg_planted.tensor, rank=2, strategy="star",
                   n_iter_max=5, tol=0.0, random_state=4)
        b = cp_nmu(nonneg_planted.tensor, rank=2, strategy="bdt",
                   n_iter_max=5, tol=0.0, random_state=4)
        np.testing.assert_allclose(a.fits, b.fits, rtol=1e-8)

    def test_order_one_rejected(self):
        with pytest.raises(ValueError):
            cp_nmu(CooTensor.empty((4,)), rank=1)


class TestCompletion:
    @pytest.fixture(scope="class")
    def observed(self):
        # Partially observed planted model: 35% of cells, enough to recover
        # a rank-2 model on this shape.
        rng = np.random.default_rng(10)
        model = random_kruskal((15, 12, 10), 2, rng, nonneg=False)
        from repro.synth.random_tensor import sample_unique_indices

        idx = sample_unique_indices((15, 12, 10), 630, rng)
        vals = model.values_at(idx)
        tensor = CooTensor(idx, vals, (15, 12, 10), canonical=True)
        return tensor, model

    def test_train_rmse_decreases(self, observed):
        tensor, _ = observed
        result = complete(tensor, rank=2, n_iter_max=60, tol=0.0,
                          random_state=0)
        assert result.train_rmse[-1] < 0.5 * result.train_rmse[0]

    def test_generalizes_to_heldout(self, observed):
        tensor, model = observed
        train, test_idx, test_vals = holdout_split(
            tensor, test_fraction=0.2, random_state=1
        )
        result = complete(train, rank=2, n_iter_max=400, tol=1e-9,
                          learning_rate=0.08, regularization=1e-5,
                          random_state=2)
        pred = result.predict(test_idx)
        test_rms = float(np.sqrt(np.mean(test_vals**2)))
        rel_err = float(
            np.sqrt(np.mean((pred - test_vals) ** 2))
        ) / max(test_rms, 1e-12)
        assert rel_err < 0.35, rel_err

    def test_mttkrp_all_matches_per_mode(self):
        """The single-sweep gradient kernel equals per-mode MTTKRPs."""
        rng = np.random.default_rng(3)
        t = random_coo(rng, (5, 6, 4, 3), 40)
        factors = [rng.standard_normal((s, 3)) for s in t.shape]
        eng = MemoizedMttkrp(t, "bdt", factors)
        all_at_once = eng.mttkrp_all()
        eng2 = MemoizedMttkrp(t, "bdt", factors)
        for n in range(4):
            np.testing.assert_allclose(
                all_at_once[n], eng2.mttkrp(n), rtol=1e-10, atol=1e-10
            )

    def test_set_root_values_changes_results(self):
        rng = np.random.default_rng(4)
        t = random_coo(rng, (5, 5, 5), 30)
        factors = [rng.standard_normal((5, 2)) for _ in range(3)]
        eng = MemoizedMttkrp(t, "bdt", factors)
        before = eng.mttkrp(0).copy()
        new_vals = rng.standard_normal(t.nnz)
        eng.set_root_values(new_vals)
        after = eng.mttkrp(0)
        reference = MemoizedMttkrp(
            CooTensor(t.idx, new_vals, t.shape, canonical=True),
            "bdt", factors,
        ).mttkrp(0)
        np.testing.assert_allclose(after, reference, rtol=1e-10, atol=1e-10)
        assert not np.allclose(before, after)

    def test_set_root_values_wrong_length(self):
        rng = np.random.default_rng(5)
        t = random_coo(rng, (4, 4), 10)
        eng = MemoizedMttkrp(t, "star")
        with pytest.raises(ValueError):
            eng.set_root_values(np.zeros(t.nnz + 1))

    def test_validation(self, observed):
        tensor, _ = observed
        with pytest.raises(ValueError):
            complete(CooTensor.empty((3, 3)), rank=1)
        with pytest.raises(ValueError):
            complete(tensor, rank=1, learning_rate=0.0)
        with pytest.raises(ValueError):
            complete(tensor, rank=1, regularization=-1.0)

    def test_holdout_split_partitions(self, observed):
        tensor, _ = observed
        train, test_idx, test_vals = holdout_split(
            tensor, test_fraction=0.25, random_state=6
        )
        assert train.nnz + test_idx.shape[0] == tensor.nnz
        assert test_idx.shape[0] == test_vals.shape[0]
        # Held-out coordinates are absent from the training pattern.
        assert np.all(train.values_at(test_idx) == 0.0)

    def test_holdout_bad_fraction(self, observed):
        tensor, _ = observed
        with pytest.raises(ValueError):
            holdout_split(tensor, test_fraction=1.5)

    def test_callback(self, observed):
        tensor, _ = observed
        epochs = []
        complete(tensor, rank=1, n_iter_max=3, tol=0.0, random_state=7,
                 callback=lambda e, rmse, factors: epochs.append(e))
        assert epochs == [0, 1, 2]


class TestRestarts:
    @pytest.fixture(scope="class")
    def planted(self):
        shape = (9, 8, 7)
        return lowrank_tensor(shape, rank=2, nnz=int(np.prod(shape)),
                              random_state=20)

    def test_best_is_max_fit(self, planted):
        report = cp_als_restarts(
            planted.tensor, rank=2, n_restarts=3, strategy="bdt",
            n_iter_max=10, tol=0.0, random_state=0,
        )
        assert len(report.results) == 3
        assert report.best.fit == max(report.fits())

    def test_restarts_share_symbolic_tree(self, planted):
        """All restarts reference the same SymbolicTree object."""
        from repro.core.symbolic import SymbolicTree

        built = []
        original = SymbolicTree.__init__

        def counting_init(self, *args, **kwargs):
            built.append(1)
            return original(self, *args, **kwargs)

        SymbolicTree.__init__ = counting_init
        try:
            cp_als_restarts(
                planted.tensor, rank=2, n_restarts=4, strategy="bdt",
                n_iter_max=2, tol=0.0, random_state=1,
            )
        finally:
            SymbolicTree.__init__ = original
        assert sum(built) == 1  # one symbolic build for four restarts

    def test_auto_strategy(self, planted):
        report = cp_als_restarts(
            planted.tensor, rank=2, n_restarts=2, strategy="auto",
            n_iter_max=3, tol=0.0, random_state=2,
        )
        assert len(report.results) == 2

    def test_select_rank_knee(self, planted):
        selection = select_rank(
            planted.tensor, ranks=[1, 2, 4], n_restarts=1, strategy="bdt",
            n_iter_max=25, tol=1e-8, random_state=3,
        )
        # True rank is 2: going 2 -> 4 gains little.
        assert selection.suggested_rank == 2
        assert selection.fits[2] > selection.fits[1]

    def test_select_rank_empty(self, planted):
        with pytest.raises(ValueError):
            select_rank(planted.tensor, ranks=[])


class TestRestartEarlyStop:
    @pytest.fixture(scope="class")
    def planted(self):
        shape = (9, 8, 7)
        return lowrank_tensor(shape, rank=2, nnz=int(np.prod(shape)),
                              random_state=21)

    def test_off_by_default(self, planted):
        report = cp_als_restarts(
            planted.tensor, rank=2, n_restarts=2, strategy="bdt",
            n_iter_max=5, tol=0.0, random_state=0,
        )
        assert report.early_stops == {}
        assert all(r.n_iterations == 5 for r in report.results)

    def test_stalled_restarts_cut_short(self, planted):
        # tol=0.0 disables cp_als's own convergence exit; the planted
        # tensor is exactly rank 2, so every restart flat-lines quickly
        # and the stall classifier should cut the iteration budget.
        report = cp_als_restarts(
            planted.tensor, rank=2, n_restarts=3, strategy="bdt",
            n_iter_max=40, tol=0.0, random_state=0, early_stop=True,
            early_stop_window=3,
        )
        assert report.early_stops
        for index, record in report.early_stops.items():
            assert record["reason"] in ("stalled", "swamped")
            assert report.results[index].n_iterations <= 40
            assert (report.results[index].n_iterations
                    == record["iteration"] + 1)

    def test_deterministic_and_same_seeds_as_full_run(self, planted):
        kwargs = dict(rank=2, n_restarts=3, strategy="bdt", n_iter_max=25,
                      tol=0.0, random_state=7)
        full = cp_als_restarts(planted.tensor, **kwargs)
        cut_a = cp_als_restarts(planted.tensor, early_stop=True, **kwargs)
        cut_b = cp_als_restarts(planted.tensor, early_stop=True, **kwargs)
        # Deterministic: two early-stop runs agree exactly.
        assert cut_a.early_stops == cut_b.early_stops
        assert cut_a.best_index == cut_b.best_index
        assert cut_a.fits() == cut_b.fits()
        # Seeds are drawn identically with or without the option: each
        # restart's trajectory is a prefix of the full run's, so on this
        # planted tensor the winner matches.
        assert cut_a.best_index == full.best_index
        assert cut_a.best.fit == pytest.approx(full.best.fit, abs=1e-6)

    def test_user_callback_still_runs(self, planted):
        seen = []
        report = cp_als_restarts(
            planted.tensor, rank=2, n_restarts=2, strategy="bdt",
            n_iter_max=4, tol=0.0, random_state=1, early_stop=True,
            callback=lambda i, fit, model: seen.append(i),
        )
        assert seen
        assert len(report.results) == 2

    def test_user_callback_stop_not_recorded(self, planted):
        report = cp_als_restarts(
            planted.tensor, rank=2, n_restarts=2, strategy="bdt",
            n_iter_max=20, tol=0.0, random_state=2, early_stop=True,
            early_stop_window=50,  # classifier effectively can't stall
            callback=lambda i, fit, model: i >= 1,
        )
        # The user's stop fired, not the classifier's: nothing recorded.
        assert report.early_stops == {}
        assert all(r.n_iterations == 2 for r in report.results)
