"""Tests for the synthetic generators and dataset registry (repro.synth)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import (DatasetSpec, dataset_names, get_spec, load_dataset,
                         lowrank_tensor, random_kruskal,
                         sample_unique_indices, sample_values,
                         skewed_random_tensor, uniform_random_tensor,
                         zipf_mode_sampler, zipf_probabilities)


class TestSampleValues:
    def test_uniform_in_range_and_nonzero(self):
        v = sample_values(np.random.default_rng(0), 1000, "uniform")
        assert (v > 0).all() and (v <= 1).all()

    def test_normal_no_zeros(self):
        v = sample_values(np.random.default_rng(1), 1000, "normal")
        assert (v != 0).all()

    def test_count_positive_integers(self):
        v = sample_values(np.random.default_rng(2), 1000, "count")
        assert (v >= 1).all()
        np.testing.assert_array_equal(v, np.round(v))

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            sample_values(np.random.default_rng(3), 10, "cauchy")


class TestSampleUniqueIndices:
    @given(st.integers(0, 300), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_exact_count_and_uniqueness(self, nnz, seed):
        rng = np.random.default_rng(seed)
        shape = (8, 9, 7)
        idx = sample_unique_indices(shape, nnz, rng)
        assert idx.shape == (nnz, 3)
        if nnz:
            assert np.unique(idx, axis=0).shape[0] == nnz
            assert (idx >= 0).all()
            assert (idx < np.array(shape)).all()

    def test_full_density(self):
        rng = np.random.default_rng(4)
        idx = sample_unique_indices((3, 4), 12, rng)
        assert np.unique(idx, axis=0).shape[0] == 12

    def test_impossible_count_raises(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            sample_unique_indices((2, 2), 5, rng)


class TestUniformRandom:
    def test_nnz_and_bounds(self):
        t = uniform_random_tensor((20, 30, 10), 500, random_state=0)
        assert t.nnz == 500
        assert t.shape == (20, 30, 10)

    def test_deterministic(self):
        a = uniform_random_tensor((10, 10), 30, random_state=42)
        b = uniform_random_tensor((10, 10), 30, random_state=42)
        assert a.allclose(b)


class TestZipf:
    def test_probabilities_normalized_decreasing(self):
        p = zipf_probabilities(100, 1.1)
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) <= 0).all()

    def test_exponent_zero_uniform(self):
        p = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)

    def test_sampler_respects_bounds(self):
        rng = np.random.default_rng(6)
        sampler = zipf_mode_sampler((10, 20), [1.0, 2.0], rng)
        draws = sampler(1, 500)
        assert (draws >= 0).all() and (draws < 20).all()

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(7)
        sampler = zipf_mode_sampler((1000,), [1.5], rng, shuffle=False)
        draws = sampler(0, 5000)
        # Top-10 ranks should hold far more than the uniform share.
        top_share = (draws < 10).mean()
        assert top_share > 0.3

    def test_skewed_tensor_has_more_overlap_than_uniform(self):
        """Skew increases index overlap: fewer distinct pair-projections."""
        shape, nnz = (100, 100, 100), 5000
        uni = uniform_random_tensor(shape, nnz, random_state=8)
        skw = skewed_random_tensor(shape, nnz, 1.5, random_state=8)
        uni_distinct = np.unique(uni.idx[:, :2], axis=0).shape[0]
        skw_distinct = np.unique(skw.idx[:, :2], axis=0).shape[0]
        assert skw_distinct < uni_distinct

    def test_scalar_exponent_broadcasts(self):
        t = skewed_random_tensor((10, 10, 10), 100, 1.0, random_state=9)
        assert t.nnz == 100


class TestLowRank:
    def test_planted_values_match_model(self):
        planted = lowrank_tensor((6, 5, 4), rank=2, nnz=50, random_state=10)
        expected = planted.ktensor.values_at(planted.tensor.idx)
        np.testing.assert_allclose(planted.tensor.vals, expected, atol=1e-12)

    def test_noise_perturbs(self):
        clean = lowrank_tensor((6, 5, 4), rank=2, nnz=50, random_state=11)
        noisy = lowrank_tensor((6, 5, 4), rank=2, nnz=50, noise=0.5,
                               random_state=11)
        assert not np.allclose(clean.tensor.vals, noisy.tensor.vals)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            lowrank_tensor((4, 4), rank=1, nnz=4, noise=-0.1)

    def test_nonneg_factors(self):
        model = random_kruskal((5, 5), 3, np.random.default_rng(12))
        for U in model.factors:
            assert (U >= 0).all()

    def test_gaussian_factors(self):
        model = random_kruskal((50, 50), 3, np.random.default_rng(13),
                               nonneg=False)
        assert (model.factors[0] < 0).any()


class TestDatasetRegistry:
    def test_names_nonempty(self):
        names = dataset_names()
        assert "nell2" in names
        assert "rand5d" in names
        assert "skew4d" in names

    def test_analogs_only_filter(self):
        analogs = dataset_names(analogs_only=True)
        assert "nell1" in analogs
        assert "rand4d" not in analogs

    def test_get_spec(self):
        spec = get_spec("delicious")
        assert isinstance(spec, DatasetSpec)
        assert spec.order == 4

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_spec("not-a-dataset")

    def test_load_small_scale(self):
        t = load_dataset("nips", scale=0.02)
        spec = get_spec("nips")
        assert t.ndim == 4
        assert t.nnz == pytest.approx(spec.nnz * 0.02, rel=0.05)

    def test_load_deterministic(self):
        a = load_dataset("enron", scale=0.01)
        b = load_dataset("enron", scale=0.01)
        assert a.allclose(b)

    def test_load_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("nips", scale=0.0)

    def test_uniform_specs_use_uniform_generator(self):
        t = load_dataset("rand3d", scale=0.01)
        assert t.ndim == 3

    @pytest.mark.parametrize("name", dataset_names(analogs_only=True))
    def test_all_analogs_loadable_tiny(self, name):
        t = load_dataset(name, scale=0.005)
        assert t.nnz > 0
        assert t.ndim == get_spec(name).order
