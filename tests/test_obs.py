"""Tests for the observability stack: tracer, exporters, metrics, watchdog."""

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.core.cpals import cp_als
from repro.core.engine import MemoizedMttkrp
from repro.core.strategy import balanced_binary
from repro.model.cost import cost_from_symbolic
from repro.obs import export, metrics, trace
from repro.obs import memory as obs_memory
from repro.obs.buildinfo import (artifact_envelope, build_info,
                                 version_string)
from repro.obs.metrics import registry
from repro.obs.watchdog import DriftWatchdog, ModelDriftWarning
from repro.parallel.engine import ParallelMemoizedMttkrp

from .helpers import random_coo


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with tracing off and empty global state."""
    trace.disable()
    trace.get_tracer().clear()
    obs_memory.disable()
    obs_memory.get_tracker().reset()
    registry.reset()
    yield
    trace.disable()
    trace.get_tracer().clear()
    obs_memory.disable()
    obs_memory.get_tracker().reset()
    registry.reset()


def small_engine(parallel=False, rank=4, **kwargs):
    rng = np.random.default_rng(0)
    t = random_coo(rng, (12, 11, 10, 9), 400)
    factors = [rng.standard_normal((d, rank)) for d in t.shape]
    cls = ParallelMemoizedMttkrp if parallel else MemoizedMttkrp
    return cls(t, balanced_binary(4), factors, **kwargs)


class TestSpans:
    def test_disabled_records_nothing(self):
        assert not trace.enabled()
        with trace.span("mttkrp", mode=0) as rec:
            assert rec is None
        assert len(trace.get_tracer()) == 0

    def test_disabled_span_is_shared_singleton(self):
        assert trace.span("a") is trace.span("b", x=1)

    def test_nesting_sets_parent(self):
        trace.enable(clear=True)
        with trace.span("outer") as outer:
            assert trace.current_span_id() == outer.id
            with trace.span("inner") as inner:
                assert inner.parent == outer.id
        assert trace.current_span_id() is None
        spans = trace.get_tracer().finished()
        assert [s.kind for s in spans] == ["inner", "outer"]  # exit order
        assert spans[1].parent is None
        assert all(s.duration >= 0 for s in spans)

    def test_tracing_context_restores_state(self):
        assert not trace.enabled()
        with trace.tracing():
            assert trace.enabled()
            with trace.span("x"):
                pass
        assert not trace.enabled()
        assert len(trace.get_tracer()) == 1

    def test_attrs_recorded(self):
        trace.enable(clear=True)
        with trace.span("node_rebuild", node=(0, 1), nnz=42):
            pass
        (rec,) = trace.get_tracer().finished()
        assert rec.attrs == {"node": (0, 1), "nnz": 42}

    def test_engine_emits_expected_kinds(self):
        engine = small_engine()
        trace.enable(clear=True)
        engine.mttkrp(0)
        kinds = {s.kind for s in trace.get_tracer().finished()}
        assert {"mttkrp", "node_rebuild", "kernel"} <= kinds

    def test_spans_feed_metrics(self):
        trace.enable(clear=True)
        with trace.span("mttkrp", mode=0):
            pass
        snap = metrics()
        assert snap["spans"]["mttkrp"]["count"] == 1
        assert snap["spans"]["mttkrp"]["total_seconds"] >= 0


class TestPoolNesting:
    def test_worker_spans_nest_under_engine_span(self):
        engine = small_engine(parallel=True, n_workers=2, min_chunk_rows=1)
        try:
            trace.enable(clear=True)
            engine.mttkrp(0)
        finally:
            engine.close()
        spans = {s.id: s for s in trace.get_tracer().finished()}
        pool_tasks = [s for s in spans.values() if s.kind == "pool_task"]
        chunks = [s for s in spans.values() if s.kind == "kernel_chunk"]
        assert pool_tasks and chunks

        def root_kind(s):
            while s.parent is not None:
                s = spans[s.parent]
            return s.kind

        # Every worker-side span must resolve through node_rebuild to the
        # engine's mttkrp span even though it ran on a pool thread.
        for s in pool_tasks + chunks:
            assert s.parent in spans
            assert root_kind(s) == "mttkrp"
        assert any(
            spans[s.parent].kind == "pool_task" for s in chunks
        )


class TestExporters:
    def _traced_spans(self):
        engine = small_engine()
        trace.enable(clear=True)
        engine.mttkrp(1)
        return trace.get_tracer().finished()

    def test_chrome_trace_is_valid(self):
        spans = self._traced_spans()
        doc = export.to_chrome_trace(spans)
        assert export.validate_chrome_trace(doc) == []
        assert doc["otherData"]["span_count"] == len(spans)
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == len(spans)
        assert {e["args"]["kind"] for e in x_events} == {
            s.kind for s in spans
        }

    def test_chrome_trace_file_round_trip(self, tmp_path):
        spans = self._traced_spans()
        path = tmp_path / "trace.chrome.json"
        export.write_chrome_trace(str(path), spans)
        with open(path) as fh:
            doc = json.load(fh)
        assert export.validate_chrome_trace(doc) == []

    def test_validator_rejects_malformed(self):
        assert export.validate_chrome_trace([]) != []
        assert export.validate_chrome_trace({"traceEvents": {}}) != []
        bad_event = {
            "traceEvents": [{"name": "x", "ph": "X", "ts": -1.0,
                             "pid": 1, "tid": 1}],
            "otherData": {"schema": export.CHROME_SCHEMA},
        }
        problems = export.validate_chrome_trace(bad_event)
        assert any("dur" in p for p in problems)
        assert any("ts" in p for p in problems)

    def test_jsonl_round_trip_lossless(self, tmp_path):
        spans = self._traced_spans()
        path = tmp_path / "trace.jsonl"
        assert export.write_jsonl(str(path), spans) == len(spans)
        back = export.read_jsonl(str(path))
        assert back == spans

    def test_tree_summary_shows_hierarchy(self):
        self._traced_spans()
        text = export.tree_summary()
        assert "mttkrp" in text
        # children are indented under the mttkrp root
        assert any(line.startswith("  ") for line in text.splitlines())

    def test_tree_summary_elides_long_sibling_lists(self):
        trace.enable(clear=True)
        with trace.span("root"):
            for i in range(30):
                with trace.span("child", index=i):
                    pass
        text = export.tree_summary(max_children=6)
        assert "siblings elided" in text
        assert text.count("child") < 30

    def test_kind_table(self):
        self._traced_spans()
        table = export.kind_table()
        assert "mttkrp" in table and "count" in table

    def test_empty_trace(self):
        assert export.tree_summary([]) == "(no spans recorded)"
        assert export.validate_chrome_trace(export.to_chrome_trace([])) == []


class TestWatchdog:
    def _fit(self, counters_scale=1.0):
        engine = small_engine()
        return engine, cost_from_symbolic(engine.symbolic, 4)

    def _run_iteration(self, engine):
        from repro.perf import counters as perf

        with perf.counting() as c:
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, engine.factors[n])
        return c

    def test_quiet_on_calibrated_model(self):
        engine, cost = self._fit()
        dog = DriftWatchdog(cost)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ModelDriftWarning)
            for i in range(3):
                c = self._run_iteration(engine)
                reading = dog.observe(i, c, seconds=0.01)
        assert dog.n_fired() == 0
        assert reading.ok
        # counters match the model exactly by construction
        assert reading.flops_ratio == pytest.approx(1.0)
        assert reading.words_ratio == pytest.approx(1.0)

    def test_fires_on_work_drift(self):
        engine, cost = self._fit()
        perturbed = dataclasses.replace(
            cost, flops_per_iteration=cost.flops_per_iteration * 2
        )
        dog = DriftWatchdog(perturbed)
        c = self._run_iteration(engine)
        with pytest.warns(ModelDriftWarning, match="flops"):
            reading = dog.observe(0, c, seconds=0.01)
        assert "flops" in reading.fired
        assert reading.flops_ratio == pytest.approx(0.5)
        assert dog.n_fired() == 1
        snap = metrics()
        assert snap["events"]["drift.warnings"] == 1
        assert snap["gauges"]["drift.flops_ratio"] == pytest.approx(0.5)

    def test_time_drift_self_calibrates_then_fires(self):
        engine, cost = self._fit()
        assert cost.predicted_seconds >= 1e-4 or True
        dog = DriftWatchdog(cost, time_warmup=2,
                            min_predicted_seconds=0.0, warn=True)
        c = self._run_iteration(engine)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ModelDriftWarning)
            dog.observe(0, c, seconds=0.01)   # warmup
            dog.observe(1, c, seconds=0.01)   # warmup -> baseline
            dog.observe(2, c, seconds=0.012)  # within 3x of baseline
        assert dog.time_baseline is not None
        with pytest.warns(ModelDriftWarning, match="time"):
            reading = dog.observe(3, c, seconds=0.01 * 10)  # 10x baseline
        assert "time" in reading.fired
        assert reading.time_rel == pytest.approx(10.0, rel=1e-6)

    def test_skips_time_in_noise_regime(self):
        engine, cost = self._fit()
        dog = DriftWatchdog(cost, min_predicted_seconds=1e9)
        c = self._run_iteration(engine)
        reading = dog.observe(0, c, seconds=123.0)
        assert reading.time_ratio is None and reading.time_rel is None
        assert dog.n_fired() == 0

    def test_cp_als_attaches_watchdog_when_tracing(self):
        t = random_coo(np.random.default_rng(3), (10, 9, 8, 7), 300)
        trace.enable(clear=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ModelDriftWarning)
            result = cp_als(t, 3, strategy=balanced_binary(4),
                            n_iter_max=3, random_state=0)
        assert result.drift_readings is not None
        assert len(result.drift_readings) == 3
        # work ratios are exact regardless of machine-time calibration
        for r in result.drift_readings:
            assert r.flops_ratio == pytest.approx(1.0)
            assert r.words_ratio == pytest.approx(1.0)

    def test_cp_als_no_watchdog_when_disabled(self):
        t = random_coo(np.random.default_rng(3), (10, 9, 8), 150)
        result = cp_als(t, 2, strategy="star", n_iter_max=2,
                        random_state=0)
        assert result.drift_readings is None


class TestCpAlsTracing:
    def test_span_tree_covers_engine_time(self):
        t = random_coo(np.random.default_rng(4), (14, 13, 12, 11), 800)
        n_iter = 3
        trace.enable(clear=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ModelDriftWarning)
            cp_als(t, 4, strategy=balanced_binary(4), n_iter_max=n_iter,
                   random_state=1)
        spans = trace.get_tracer().finished()
        iters = [s for s in spans if s.kind == "als_iteration"]
        mttkrps = [s for s in spans if s.kind == "mttkrp"]
        assert len(iters) == n_iter
        assert len(mttkrps) == n_iter * 4  # one per mode per iteration
        assert {s.attrs["mode"] for s in mttkrps} == {0, 1, 2, 3}
        # every mttkrp nests (possibly transitively) under an iteration
        by_id = {s.id: s for s in spans}
        for s in mttkrps:
            cur = s
            while cur.parent is not None:
                cur = by_id[cur.parent]
            assert cur.kind == "als_iteration"
        # per-iteration child spans fit inside their parent's window
        for it in iters:
            for child in (s for s in spans if s.parent == it.id):
                assert child.t0 >= it.t0 - 1e-9
                assert child.t1 <= it.t1 + 1e-9


class TestBuildInfo:
    def test_build_info_keys(self):
        info = build_info()
        assert {"version", "git_rev", "python", "numpy"} <= set(info)

    def test_version_string(self):
        s = version_string()
        assert s.startswith("repro ") and "python" in s

    def test_artifact_envelope(self):
        env = artifact_envelope("E3", {"x": 1}, scale=0.1)
        assert env["schema"] == "repro-bench/v1"
        assert env["artifact_id"] == "E3"
        assert env["result"] == {"x": 1}
        assert env["meta"]["scale"] == 0.1
        assert "timestamp" in env["meta"] and "git_rev" in env["meta"]
        json.dumps(env)  # JSON-serializable end to end


class TestMetricsRegistry:
    def test_gauges_and_events(self):
        registry.set_gauge("g", 2.5)
        registry.incr("e")
        registry.incr("e", 2)
        snap = metrics()
        assert snap["gauges"]["g"] == 2.5
        assert snap["events"]["e"] == 3

    def test_kernel_resolution_counted(self):
        from repro.kernels import get_kernel

        get_kernel("numpy")
        assert metrics()["events"]["kernel.resolved.numpy"] >= 1

    def test_histogram_buckets(self):
        registry.observe_span("k", 0.001)
        registry.observe_span("k", 0.002)
        stats = metrics()["spans"]["k"]
        assert stats["count"] == 2
        assert sum(stats["log2_buckets"].values()) == 2


class TestMemTracker:
    def test_disabled_by_default(self):
        assert not obs_memory.enabled()
        engine = small_engine()
        engine.mttkrp(0)
        assert obs_memory.get_tracker().n_stores == 0

    def test_store_free_accounting(self):
        t = obs_memory.MemTracker()
        t.on_store(1, 0, 100)
        t.on_store(1, 1, 50)
        assert t.live_bytes == 150 and t.peak_bytes == 150
        t.on_free(1, 0)
        assert t.live_bytes == 50
        t.on_free(1, 7)  # unknown node: no-op, never negative
        assert t.live_bytes == 50 and t.n_frees == 1
        t.on_store(1, 0, 200)  # re-store after free
        assert t.peak_bytes == 250

    def test_restore_same_node_replaces(self):
        t = obs_memory.MemTracker()
        t.on_store(1, 0, 100)
        t.on_store(1, 0, 120)  # rebuild of a cached node replaces, not adds
        assert t.live_bytes == 120

    def test_engine_keys_do_not_collide(self):
        t = obs_memory.MemTracker()
        t.on_store(1, 0, 100)
        t.on_store(2, 0, 60)
        assert t.live_bytes == 160
        t.release_engine(1)
        assert t.live_bytes == 60

    def test_window_peak(self):
        t = obs_memory.MemTracker()
        t.on_store(1, 0, 100)
        t.on_free(1, 0)
        t.begin_window()
        t.on_store(1, 1, 30)
        t.on_free(1, 1)
        assert t.window_peak() == 30  # not the pre-window 100
        r = t.observe_iteration(0, predicted_peak_bytes=30)
        assert r.measured_peak_bytes == 30 and r.ratio == 1.0

    def test_register_expected_counts_mismatches(self):
        t = obs_memory.MemTracker()
        t.register_expected(1, [80, 80])
        t.on_store(1, 0, 80)
        t.on_store(1, 1, 99)
        assert t.n_mismatches == 1
        assert metrics()["events"]["mem.node_mismatch"] == 1

    def test_engine_feeds_tracker(self):
        engine = small_engine()
        obs_memory.enable(clear=True)
        engine.mttkrp(0)
        tracker = obs_memory.get_tracker()
        assert tracker.n_stores > 0
        assert tracker.live_bytes == engine.live_value_bytes()

    def test_measured_peak_matches_simulation_exactly(self):
        from repro.model.cost import simulate_peak_value_bytes

        engine = small_engine()
        node_nnz = engine.symbolic.node_nnz()
        predicted = simulate_peak_value_bytes(engine.strategy, node_nnz, 4)
        obs_memory.enable(clear=True)
        tracker = obs_memory.get_tracker()
        for i in range(2):
            tracker.begin_window()
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, engine.factors[n])
            # exact, not approximate: byte-for-byte equality
            assert tracker.window_peak() == predicted

    def test_concurrent_stores_keep_peak_correct(self):
        import threading

        t = obs_memory.MemTracker()
        n_threads, n_ops, nbytes = 4, 300, 10
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            barrier.wait()
            for i in range(n_ops):
                t.on_store(tid, i, nbytes)
            for i in range(n_ops):
                t.on_free(tid, i)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.live_bytes == 0
        assert t.n_stores == n_threads * n_ops
        assert t.n_frees == n_threads * n_ops
        # peak is at least one thread's full residency and never exceeds
        # the theoretical all-live maximum
        assert n_ops * nbytes <= t.peak_bytes <= n_threads * n_ops * nbytes

    def test_parallel_engine_peak_exact(self):
        from repro.model.cost import simulate_peak_value_bytes

        engine = small_engine(parallel=True, n_workers=2, min_chunk_rows=1)
        try:
            node_nnz = engine.symbolic.node_nnz()
            predicted = simulate_peak_value_bytes(
                engine.strategy, node_nnz, 4
            )
            obs_memory.enable(clear=True)
            tracker = obs_memory.get_tracker()
            tracker.begin_window()
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, engine.factors[n])
            assert tracker.window_peak() == predicted
        finally:
            engine.close()

    def test_tracking_context_restores_state(self):
        assert not obs_memory.enabled()
        with obs_memory.tracking() as t:
            assert obs_memory.enabled()
            t.on_store(1, 0, 10)
        assert not obs_memory.enabled()

    def test_snapshot_roundtrips_to_json(self):
        with obs_memory.tracking() as t:
            t.on_store(1, 0, 10)
            t.begin_window()
            t.observe_iteration(0, predicted_peak_bytes=10)
        snap = t.snapshot()
        json.dumps(snap)
        assert snap["readings"][0]["measured_peak_bytes"] == 10


class TestCpAlsMemory:
    def _tensor(self):
        return random_coo(np.random.default_rng(5), (12, 11, 10, 9), 500)

    def test_memory_readings_exact_against_model(self):
        from repro.model.cost import cost_from_symbolic as _cfs

        t = self._tensor()
        with obs_memory.tracking():
            result = cp_als(t, 4, strategy=balanced_binary(4),
                            n_iter_max=3, tol=0, random_state=0)
        assert result.memory_readings is not None
        assert len(result.memory_readings) == 3
        engine = MemoizedMttkrp(t, balanced_binary(4))
        expected = _cfs(engine.symbolic, 4).peak_value_bytes
        for r in result.memory_readings:
            assert r.predicted_peak_bytes == expected
        # steady-state iterations (past the cold start) match exactly
        for r in result.memory_readings[1:]:
            assert r.measured_peak_bytes == r.predicted_peak_bytes
            assert r.ratio == 1.0

    def test_no_readings_when_disabled(self):
        result = cp_als(self._tensor(), 3, strategy="star", n_iter_max=2,
                        random_state=0)
        assert result.memory_readings is None

    def test_watchdog_mem_band_quiet_on_exact_match(self):
        t = self._tensor()
        trace.enable(clear=True)
        obs_memory.enable(clear=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ModelDriftWarning)
            result = cp_als(t, 4, strategy=balanced_binary(4),
                            n_iter_max=3, tol=0, random_state=0)
        assert result.drift_readings is not None
        for r in result.drift_readings[1:]:
            assert r.mem_ratio == pytest.approx(1.0)
            assert "mem" not in r.fired

    def test_watchdog_fires_on_memory_drift(self):
        engine = small_engine()
        cost = cost_from_symbolic(engine.symbolic, 4)
        perturbed = dataclasses.replace(
            cost, peak_value_bytes=cost.peak_value_bytes * 2
        )
        dog = DriftWatchdog(perturbed, mem_warmup=0)
        obs_memory.enable(clear=True)
        tracker = obs_memory.get_tracker()
        from repro.perf import counters as perf

        tracker.begin_window()
        with perf.counting() as c:
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, engine.factors[n])
        reading = tracker.observe_iteration(0)
        with pytest.warns(ModelDriftWarning, match="mem"):
            drift = dog.observe(0, c, seconds=0.01, mem=reading)
        assert "mem" in drift.fired
        assert drift.mem_ratio == pytest.approx(0.5)
        assert metrics()["gauges"]["drift.mem_ratio"] == pytest.approx(0.5)

    def test_watchdog_skips_mem_during_warmup(self):
        engine = small_engine()
        cost = cost_from_symbolic(engine.symbolic, 4)
        perturbed = dataclasses.replace(
            cost, peak_value_bytes=cost.peak_value_bytes * 100
        )
        dog = DriftWatchdog(perturbed, mem_warmup=1)
        tracker = obs_memory.MemTracker()
        tracker.begin_window()
        reading = tracker.observe_iteration(0)
        from repro.perf.counters import Counters

        c = Counters()
        c.flops = perturbed.flops_per_iteration
        c.words = perturbed.words_per_iteration
        drift = dog.observe(0, c, seconds=0.01, mem=reading)
        assert drift.mem_ratio is None and "mem" not in drift.fired

    def test_chrome_trace_memory_counter_track(self):
        t = self._tensor()
        trace.enable(clear=True)
        obs_memory.enable(clear=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ModelDriftWarning)
            cp_als(t, 4, strategy=balanced_binary(4), n_iter_max=2,
                   tol=0, random_state=0)
        tracker = obs_memory.get_tracker()
        assert tracker.samples
        doc = export.to_chrome_trace(mem_samples=tracker.samples)
        assert export.validate_chrome_trace(doc) == []
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == len(tracker.samples)
        assert max(e["args"]["live_bytes"] for e in counters) == \
            tracker.peak_bytes

    def test_gauges_published_at_span_boundaries(self):
        t = self._tensor()
        trace.enable(clear=True)
        obs_memory.enable(clear=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ModelDriftWarning)
            cp_als(t, 4, strategy=balanced_binary(4), n_iter_max=2,
                   tol=0, random_state=0)
        gauges = metrics()["gauges"]
        for name in ("mem.live_value_bytes", "mem.live_value_bytes_peak",
                     "mem.workspace_bytes", "mem.factor_bytes",
                     "mem.iter_peak_bytes", "mem.peak_bytes"):
            assert name in gauges, name
        assert gauges["mem.factor_bytes"] > 0
        assert gauges["mem.peak_bytes"] == obs_memory.get_tracker().peak_bytes
