"""Unit tests for repro.core.coo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coo import CooTensor, coo_nbytes
from repro.core.rowcodes import lexsort_rows

from .helpers import random_coo


class TestConstruction:
    def test_basic(self):
        t = CooTensor([[0, 1], [1, 0]], [1.0, 2.0], (2, 2))
        assert t.shape == (2, 2)
        assert t.nnz == 2
        assert t.ndim == 2

    def test_canonicalization_sorts(self):
        t = CooTensor([[1, 0], [0, 1]], [2.0, 1.0], (2, 2))
        assert t.idx.tolist() == [[0, 1], [1, 0]]
        assert t.vals.tolist() == [1.0, 2.0]

    def test_canonicalization_merges_duplicates(self):
        t = CooTensor([[0, 0], [0, 0], [1, 1]], [1.0, 2.0, 5.0], (2, 2))
        assert t.nnz == 2
        assert t.vals.tolist() == [3.0, 5.0]

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError, match="out of bounds"):
            CooTensor([[0, 2]], [1.0], (2, 2))

    def test_negative_index_raises(self):
        with pytest.raises(ValueError, match="negative"):
            CooTensor([[-1, 0]], [1.0], (2, 2))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            CooTensor([[0, 0]], [1.0, 2.0], (2, 2))

    def test_wrong_column_count_raises(self):
        with pytest.raises(ValueError):
            CooTensor([[0, 0, 0]], [1.0], (2, 2))

    def test_empty(self):
        t = CooTensor.empty((3, 4, 5))
        assert t.nnz == 0
        assert t.norm() == 0.0
        assert t.to_dense().shape == (3, 4, 5)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            CooTensor.empty((0, 2))

    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((3, 4, 2))
        dense[dense < 0.5] = 0.0
        t = CooTensor.from_dense(dense)
        np.testing.assert_allclose(t.to_dense(), dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[1.0, 1e-6], [0.0, 2.0]])
        t = CooTensor.from_dense(dense, tol=1e-3)
        assert t.nnz == 2

    def test_density(self):
        t = CooTensor([[0, 0]], [1.0], (2, 5))
        assert t.density == pytest.approx(0.1)

    def test_copy_semantics(self):
        idx = np.array([[0, 0]], dtype=np.int64)
        vals = np.array([1.0])
        t = CooTensor(idx, vals, (2, 2))
        vals[0] = 99.0
        assert t.vals[0] == 1.0


class TestNumerics:
    def test_norm(self):
        t = CooTensor([[0, 0], [1, 1]], [3.0, 4.0], (2, 2))
        assert t.norm() == pytest.approx(5.0)

    def test_norm_matches_dense(self):
        rng = np.random.default_rng(1)
        t = random_coo(rng, (4, 5, 6), 40)
        assert t.norm() == pytest.approx(np.linalg.norm(t.to_dense()))

    def test_values_at_present_and_absent(self):
        t = CooTensor([[0, 1], [1, 0]], [1.5, 2.5], (2, 2))
        out = t.values_at([[0, 1], [0, 0], [1, 0]])
        np.testing.assert_allclose(out, [1.5, 0.0, 2.5])

    def test_values_at_empty_tensor(self):
        t = CooTensor.empty((2, 2))
        np.testing.assert_allclose(t.values_at([[0, 0]]), [0.0])

    def test_slice_nnz(self):
        t = CooTensor([[0, 0], [0, 1], [2, 0]], [1, 1, 1], (3, 2))
        assert t.slice_nnz(0).tolist() == [2, 0, 1]
        assert t.slice_nnz(1).tolist() == [2, 1]

    def test_mode_plan_groups_by_mode(self):
        rng = np.random.default_rng(2)
        t = random_coo(rng, (5, 6), 30)
        plan = t.mode_plan(0)
        sums = plan.reduce(t.vals)
        dense_row_sums = t.to_dense().sum(axis=1)
        np.testing.assert_allclose(
            sums, dense_row_sums[plan.group_ids], atol=1e-12
        )


class TestMatricize:
    def test_matricize_matches_dense_reshape(self):
        rng = np.random.default_rng(3)
        t = random_coo(rng, (3, 4, 5), 25)
        dense = t.to_dense()
        for mode in range(3):
            mat = t.matricize(mode).toarray()
            moved = np.moveaxis(dense, mode, 0)
            np.testing.assert_allclose(
                mat, moved.reshape(dense.shape[mode], -1), atol=1e-12
            )

    def test_matricize_negative_mode(self):
        rng = np.random.default_rng(4)
        t = random_coo(rng, (3, 4), 6)
        np.testing.assert_allclose(
            t.matricize(-1).toarray(), t.matricize(1).toarray()
        )


class TestTransforms:
    def test_permute_modes(self):
        rng = np.random.default_rng(5)
        t = random_coo(rng, (3, 4, 5), 20)
        p = t.permute_modes([2, 0, 1])
        np.testing.assert_allclose(
            p.to_dense(), np.transpose(t.to_dense(), (2, 0, 1))
        )

    def test_permute_invalid(self):
        t = CooTensor.empty((2, 2))
        with pytest.raises(ValueError):
            t.permute_modes([0, 0])

    def test_remove_empty_slices(self):
        t = CooTensor([[0, 5], [4, 5]], [1.0, 2.0], (10, 10))
        compact, maps = t.remove_empty_slices()
        assert compact.shape == (2, 1)
        assert maps[0].tolist() == [0, 4]
        assert maps[1].tolist() == [5]
        # Values preserved under the index maps.
        np.testing.assert_allclose(compact.vals, t.vals)

    def test_scale(self):
        t = CooTensor([[0, 0]], [2.0], (2, 2))
        assert t.scale(-0.5).vals.tolist() == [-1.0]

    def test_split_nonzeros_sums_to_whole(self):
        rng = np.random.default_rng(6)
        t = random_coo(rng, (4, 4, 4), 30)
        parts = t.split_nonzeros(3)
        assert len(parts) == 3
        total = parts[0]
        for p in parts[1:]:
            total = total + p
        assert total.allclose(t)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            CooTensor.empty((2, 2)) + CooTensor.empty((2, 3))

    def test_sub_self_is_zero(self):
        rng = np.random.default_rng(7)
        t = random_coo(rng, (3, 3), 5)
        diff = t - t
        assert diff.allclose(CooTensor.empty((3, 3)))


class TestInvariants:
    @given(st.integers(0, 60), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_canonical_form_sorted_unique(self, nnz, seed):
        rng = np.random.default_rng(seed)
        t = random_coo(rng, (4, 5, 3), max(nnz, 0)) if nnz else CooTensor.empty((4, 5, 3))
        if t.nnz > 1:
            order = lexsort_rows(t.idx)
            assert np.array_equal(order, np.arange(t.nnz))
            # No duplicate rows.
            dup = np.all(t.idx[1:] == t.idx[:-1], axis=1)
            assert not dup.any()

    def test_canonicalization_preserves_dense(self):
        rng = np.random.default_rng(8)
        nnz = 50
        idx = np.column_stack([rng.integers(0, 4, nnz) for _ in range(3)])
        vals = rng.standard_normal(nnz)
        t = CooTensor(idx, vals, (4, 4, 4))
        ref = np.zeros((4, 4, 4))
        np.add.at(ref, tuple(idx.T), vals)
        np.testing.assert_allclose(t.to_dense(), ref, atol=1e-12)


def test_coo_nbytes_formula():
    assert coo_nbytes(10, 3) == 10 * (3 * 8 + 8)
