"""Tests for tensor I/O (repro.io)."""

import gzip

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.io import cached_dataset, load_npz, read_tns, save_npz, write_tns

from .helpers import random_coo


@pytest.fixture
def tensor():
    return random_coo(np.random.default_rng(0), (6, 7, 5), 40)


class TestFrostt:
    def test_roundtrip(self, tensor, tmp_path):
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        back = read_tns(path)
        assert back.shape == tensor.shape
        assert back.allclose(tensor)

    def test_gzip_roundtrip(self, tensor, tmp_path):
        path = tmp_path / "t.tns.gz"
        write_tns(tensor, path)
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("#")
        assert read_tns(path).allclose(tensor)

    def test_explicit_shape_override(self, tensor, tmp_path):
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        big = read_tns(path, shape=(10, 10, 10))
        assert big.shape == (10, 10, 10)
        assert big.nnz == tensor.nnz

    def test_one_based_on_disk(self, tmp_path):
        path = tmp_path / "t.tns"
        write_tns(CooTensor([[0, 0]], [2.5], (1, 1)), path)
        body = [
            line for line in path.read_text().splitlines()
            if not line.startswith("#")
        ]
        assert body == ["1 1 2.5"]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("# hi\n\n% also a comment\n1 2 3.0\n2 1 4.0\n")
        t = read_tns(path)
        assert t.nnz == 2
        assert t.shape == (2, 2)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 2 3.0\n1 2 3 4.0\n")
        with pytest.raises(ValueError, match="expected 3 fields"):
            read_tns(path)

    def test_zero_based_rejected(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("0 1 3.0\n")
        with pytest.raises(ValueError, match="1-based"):
            read_tns(path)

    def test_empty_file_needs_shape(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            read_tns(path)
        t = read_tns(path, shape=(2, 3))
        assert t.nnz == 0

    def test_values_roundtrip_exactly(self, tmp_path):
        vals = [1.0 / 3.0, 2.5e-17, -1234567.875]
        t = CooTensor([[0, 0], [1, 1], [2, 2]], vals, (3, 3))
        path = tmp_path / "t.tns"
        write_tns(t, path)
        np.testing.assert_array_equal(read_tns(path).vals, t.vals)


class TestNpzCache:
    def test_roundtrip(self, tensor, tmp_path):
        path = tmp_path / "t.npz"
        save_npz(tensor, path)
        assert load_npz(path).allclose(tensor)

    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, idx=np.zeros((1, 2), np.int64))
        with pytest.raises(ValueError):
            load_npz(path)

    def test_cached_dataset_hits_cache(self, tmp_path):
        a = cached_dataset("nips", tmp_path, scale=0.005)
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        b = cached_dataset("nips", tmp_path, scale=0.005)
        assert a.allclose(b)
        assert list(tmp_path.iterdir()) == files
