"""Tests for planner explainability and cost attribution.

Covers :mod:`repro.obs.explain` (the ``repro-plan/v1`` artifact and its
validator), :mod:`repro.obs.attribution` (exact per-node/per-mode
predicted-vs-measured accounting), the drift watchdog's blame wiring, the
``repro explain`` / ``repro plan --json`` CLI surfaces, and the
:func:`repro.model.report.format_table` ragged-input guard.
"""

import copy
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.cpals import cp_als
from repro.core.dtypes import VALUE_DTYPE
from repro.core.engine import MemoizedMttkrp
from repro.model.report import format_table
from repro.model.search import search_candidates
from repro.obs import attribution as obs_attr
from repro.obs.explain import (PLAN_SCHEMA, explain_plan,
                               validate_plan_artifact)
from repro.perf import counters as perf
from repro.synth.skewed import skewed_random_tensor


@pytest.fixture(scope="module")
def tensor4d():
    return skewed_random_tensor((30, 25, 40, 12), 3000, 1.1, random_state=5)


def _drive_attributed_sweeps(tensor, strategy, rank, n_iter=2):
    """Run ``n_iter`` ALS-style MTTKRP sweeps under an enabled recorder."""
    rec = obs_attr.get_recorder()
    engine = MemoizedMttkrp(tensor, strategy)
    rng = np.random.default_rng(0)
    factors = [rng.random((d, rank), dtype=VALUE_DTYPE)
               for d in tensor.shape]
    engine.set_factors(factors)
    rec.register(strategy, engine.symbolic.node_nnz(), rank)
    reading = None
    for i in range(n_iter):
        rec.begin_window()
        for n in engine.mode_order:
            engine.mttkrp(n)
            engine.update_factor(n, factors[n])
        reading = rec.observe_iteration(i)
    return rec, reading


class TestFormatTable:
    def test_ragged_row_raises(self):
        with pytest.raises(ValueError, match="row 1 has 2 cells"):
            format_table(["a", "b", "c"], [[1, 2, 3], [1, 2]])

    def test_long_row_raises(self):
        with pytest.raises(ValueError, match="expected 2"):
            format_table(["a", "b"], [[1, 2, 3]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError, match="header"):
            format_table([], [[1]])

    def test_well_formed_ok(self):
        out = format_table(["x", "y"], [[1, 2.5], ["a", "b"]])
        assert "x" in out and "2.5" in out


class TestExplainPlan:
    def test_artifact_valid_and_complete(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8)
        artifact = expl.to_artifact()
        validate_plan_artifact(artifact)
        payload = artifact["result"]
        assert payload["schema"] == PLAN_SCHEMA
        # Every candidate the search produced must appear — no silent drops.
        assert payload["n_candidates"] == len(search_candidates(tensor4d))
        names = [c["name"] for c in payload["candidates"]]
        assert payload["best"] in names

    def test_winner_margins_and_dominant_terms(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8)
        best = next(c for c in expl.candidates if c.name == expl.best)
        assert best.rank_position == 1
        assert best.margin_vs_best_seconds is None
        for cand in expl.candidates:
            if cand.name == best.name:
                continue
            assert cand.margin_vs_best_seconds >= 0.0
            assert cand.margin_dominant_term in ("flops", "words")
            assert cand.dominant_term in ("flops", "words")

    def test_per_node_terms_sum_to_totals(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8)
        for cand in expl.candidates:
            assert sum(n["flops"] for n in cand.nodes) == \
                cand.flops_per_iteration
            assert sum(n["words"] for n in cand.nodes) == \
                cand.words_per_iteration

    def test_validator_rejects_tampering(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8)
        good = expl.to_artifact()

        doc = copy.deepcopy(good)
        doc["result"]["candidates"][0]["nodes"][0]["flops"] += 1
        with pytest.raises(ValueError, match="sum"):
            validate_plan_artifact(doc)

        doc = copy.deepcopy(good)
        doc["result"]["candidates"].pop()
        with pytest.raises(ValueError, match="n_candidates"):
            validate_plan_artifact(doc)

        doc = copy.deepcopy(good)
        doc["result"]["schema"] = "repro-plan/v0"
        with pytest.raises(ValueError, match="schema"):
            validate_plan_artifact(doc)

    def test_summary_renders(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8)
        text = expl.summary(top=3)
        assert expl.best in text
        assert "per-node" in text.lower() or "node" in text


class TestAttributionExactness:
    def test_measured_matches_model_exactly(self, tensor4d):
        strategy = explain_plan(tensor4d, rank=8).report.best.strategy
        with obs_attr.recording():
            with perf.counting() as c:
                rec, reading = _drive_attributed_sweeps(
                    tensor4d, strategy, rank=8
                )
            assert reading is not None
            # Steady state: every node and mode exact on the numpy backend.
            for row in reading.node_rows:
                assert row["flops_ratio"] == 1.0
                assert row["words_ratio"] == 1.0
            for row in reading.mode_rows:
                assert row["flops_ratio"] == 1.0
            assert reading.max_node_err("flops") == 0.0
            # Attribution must not invent work: summed attributed flops ==
            # the engine's own perf counters for the same block.
            total = sum(r.flops for r in rec.readings)
            assert total == c.flops

    def test_blame_none_when_exact(self, tensor4d):
        strategy = explain_plan(tensor4d, rank=8).report.best.strategy
        with obs_attr.recording():
            _, reading = _drive_attributed_sweeps(tensor4d, strategy, rank=8)
        assert reading.blame("flops") is None
        assert reading.blame("words") is None

    def test_blame_names_offending_node(self, tensor4d):
        strategy = explain_plan(tensor4d, rank=8).report.best.strategy
        with obs_attr.recording():
            rec, reading = _drive_attributed_sweeps(
                tensor4d, strategy, rank=8
            )
        # Corrupt one prediction: the blame must point at that node.
        target = reading.node_rows[0]["node"]
        for row in reading.node_rows:
            if row["node"] == target:
                row["predicted_flops"] = max(1, row["predicted_flops"] // 2)
                row["flops_ratio"] = (
                    row["measured_flops"] / row["predicted_flops"]
                )
        blame = reading.blame("flops")
        assert blame is not None
        assert blame["node"] == target
        assert "why" in blame

    def test_recording_restores_disabled(self):
        assert not obs_attr.enabled()
        with obs_attr.recording():
            assert obs_attr.enabled()
        assert not obs_attr.enabled()

    def test_disabled_recorder_stays_empty(self, tensor4d):
        obs_attr.disable()
        rec = obs_attr.get_recorder()
        rec.reset()
        strategy = search_candidates(tensor4d)[0]
        engine = MemoizedMttkrp(tensor4d, strategy)
        rng = np.random.default_rng(1)
        engine.set_factors(
            [rng.random((d, 4), dtype=VALUE_DTYPE) for d in tensor4d.shape]
        )
        engine.mttkrp(0)
        assert not rec.has_data

    def test_cp_als_collects_readings(self, tensor4d):
        with obs_attr.recording():
            result = cp_als(tensor4d, 4, n_iter_max=3, tol=0.0,
                            random_state=0)
        assert result.attribution_readings is not None
        assert len(result.attribution_readings) == result.n_iterations
        reading = result.attribution_readings[-1]
        assert reading.max_node_err("flops") == 0.0

    def test_snapshot_schema(self, tensor4d):
        strategy = explain_plan(tensor4d, rank=8).report.best.strategy
        with obs_attr.recording():
            rec, _ = _drive_attributed_sweeps(tensor4d, strategy, rank=8)
            snap = rec.snapshot()
        assert snap["schema"] == "repro-attr/v1"
        assert snap["nodes"] and snap["modes"]
        text = obs_attr.format_attribution(snap)
        assert "node" in text


class TestWatchdogBlame:
    def test_drift_warning_names_node_and_mode(self, tensor4d):
        from repro.model.cost import cost_from_symbolic
        from repro.obs.watchdog import DriftWatchdog, ModelDriftWarning

        strategy = explain_plan(tensor4d, rank=8).report.best.strategy
        with obs_attr.recording():
            with perf.counting() as c:
                rec, reading = _drive_attributed_sweeps(
                    tensor4d, strategy, rank=8, n_iter=1
                )
        engine = MemoizedMttkrp(tensor4d, strategy)
        # A wrong-rank cost report makes the aggregate flops check fire;
        # a tampered reading gives blame a worst-offender node to name.
        cost = cost_from_symbolic(engine.symbolic, 4)
        watchdog = DriftWatchdog(cost)
        reading.node_rows[0]["predicted_flops"] = max(
            1, reading.node_rows[0]["predicted_flops"] // 2
        )
        reading.node_rows[0]["flops_ratio"] = 2.0
        with pytest.warns(ModelDriftWarning, match="worst offender node"):
            watchdog.observe(0, c, 0.01, attribution=reading)


class TestCliSurfaces:
    def _write_tensor(self, tmp_path):
        from repro.io.frostt import write_tns

        t = skewed_random_tensor((12, 10, 14, 8), 600, 1.0, random_state=2)
        path = tmp_path / "t.tns"
        write_tns(t, path)
        return str(path), t

    def test_plan_json_envelope(self, tmp_path, capsys):
        path, t = self._write_tensor(tmp_path)
        assert main(["plan", path, "--rank", "4", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_plan_artifact(doc)
        assert doc["schema"] == "repro-bench/v1"
        assert doc["result"]["n_candidates"] == len(search_candidates(t))

    def test_plan_explain_text(self, tmp_path, capsys):
        path, _ = self._write_tensor(tmp_path)
        assert main(["plan", path, "--rank", "4", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out.lower()

    def test_explain_measure_exact(self, tmp_path, capsys):
        path, _ = self._write_tensor(tmp_path)
        assert main(["explain", path, "--rank", "4", "--measure",
                     "--iters", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_plan_artifact(doc)
        measured = doc["result"]["measured"]
        assert measured["schema"] == "repro-attr/v1"
        for row in measured["nodes"]:
            assert row["flops_ratio"] == 1.0
        assert not obs_attr.enabled()

    def test_explain_out_file(self, tmp_path, capsys):
        path, _ = self._write_tensor(tmp_path)
        out_path = tmp_path / "plan.json"
        assert main(["explain", path, "--rank", "4",
                     "--out", str(out_path)]) == 0
        with open(out_path) as fh:
            validate_plan_artifact(json.load(fh))


class TestExecutionSection:
    """The additive ``execution`` block of ``repro-plan/v1``: tier/layout
    pricing keyed to a worker count, carried next to the strategy race."""

    def test_absent_without_workers(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8)
        assert expl.execution is None
        artifact = expl.to_artifact()
        assert artifact["result"]["execution"] is None
        validate_plan_artifact(artifact)  # older artifacts stay valid

    def test_present_and_valid_with_workers(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8, n_workers=4)
        validate_plan_artifact(expl.to_artifact())
        section = expl.execution
        assert section["n_workers"] == 4
        pairs = [(c["tier"], c["layout"]) for c in section["candidates"]]
        assert pairs == [("thread", "numpy"), ("thread", "alto"),
                         ("process", "numpy"), ("process", "alto")]
        rec = section["recommended"]
        assert (rec["tier"], rec["layout"]) in pairs
        feasible = [c for c in section["candidates"] if c["feasible"]]
        assert rec["predicted_seconds"] == min(
            c["predicted_seconds"] for c in feasible
        )
        for c in feasible:
            assert set(c["terms"]) >= {"flops", "words", "base_seconds"}

    def test_summary_renders_decision_table(self, tensor4d):
        expl = explain_plan(tensor4d, rank=8, n_workers=4)
        text = expl.summary()
        assert "execution decision at 4 workers" in text
        assert "<-" in text  # the pick marker
        for tier in ("thread", "process"):
            assert tier in text

    def test_validator_rejects_tampered_execution(self, tensor4d):
        good = explain_plan(tensor4d, rank=8, n_workers=4).to_artifact()

        doc = copy.deepcopy(good)
        doc["result"]["execution"]["candidates"] = []
        with pytest.raises(ValueError, match="candidates"):
            validate_plan_artifact(doc)

        doc = copy.deepcopy(good)
        for c in doc["result"]["execution"]["candidates"]:
            c["feasible"] = False
        with pytest.raises(ValueError, match="feasible"):
            validate_plan_artifact(doc)

        doc = copy.deepcopy(good)
        rec = doc["result"]["execution"]["recommended"]
        rec["predicted_seconds"] = rec["predicted_seconds"] * 10 + 1.0
        with pytest.raises(ValueError, match="cheapest"):
            validate_plan_artifact(doc)

    @pytest.fixture()
    def oversubscribed(self, monkeypatch):
        """--workers goes through the shared clamp; opt out so the CLI
        tests are deterministic on single-core CI machines."""
        import warnings as _warnings

        monkeypatch.setenv("REPRO_ALLOW_OVERSUBSCRIBE", "1")
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", RuntimeWarning)
            yield

    def test_plan_json_with_workers(self, tmp_path, capsys, oversubscribed):
        path, t = TestCliSurfaces._write_tensor(self, tmp_path)
        assert main(["plan", path, "--rank", "4", "--json",
                     "--workers", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_plan_artifact(doc)
        section = doc["result"]["execution"]
        assert section["n_workers"] == 2
        assert len(section["candidates"]) == 4

    def test_plan_explain_text_with_workers(self, tmp_path, capsys,
                                            oversubscribed):
        path, _ = TestCliSurfaces._write_tensor(self, tmp_path)
        assert main(["plan", path, "--rank", "4", "--explain",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "execution decision at 2 workers" in out
