"""Tests for the ALTO bit-packed layout (repro.kernels.alto).

The load-bearing claim: packing is lossless (decode == the original
integers), so every consumer — the ``alto`` kernel backend, the
thread-tier COO backend, the process tier's ``layout="alto"`` — is
*bitwise* identical to its numpy-layout counterpart, not merely close.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core import strategy as S
from repro.core.engine import MemoizedMttkrp
from repro.kernels.alto import (MAX_BITS, AltoEncoding, aligned_chunks,
                                alto_bits, fits_alto)
from repro.parallel import AltoCooMttkrp, ParallelCooMttkrp

from .helpers import random_coo, random_factors


class TestBits:
    def test_alto_bits_values(self):
        assert alto_bits((1, 2, 3, 4, 5, 1024, 1025)) == [0, 1, 2, 2, 3, 10, 11]

    def test_invalid_dim(self):
        with pytest.raises(ValueError, match=">= 1"):
            alto_bits((4, 0))

    def test_fits_alto_boundary(self):
        assert fits_alto((1 << 31, 1 << 31, 2))  # 31 + 31 + 1 = 63
        assert not fits_alto((1 << 31, 1 << 31, 4))  # 64 bits

    def test_encoding_rejects_overflow(self):
        dims = (1 << 32, 1 << 32)
        with pytest.raises(ValueError, match=str(MAX_BITS)):
            AltoEncoding(dims, np.zeros(0, dtype=np.uint64))


@hst.composite
def index_cases(draw):
    order = draw(hst.integers(2, 6))
    shape = tuple(draw(hst.integers(1, 40)) for _ in range(order))
    nnz = draw(hst.integers(0, 120))
    seed = draw(hst.integers(0, 2**31 - 1))
    return shape, nnz, seed


class TestEncoding:
    @given(case=index_cases())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_exact(self, case):
        shape, nnz, seed = case
        rng = np.random.default_rng(seed)
        idx = np.column_stack(
            [rng.integers(0, s, size=nnz) for s in shape]
        ).astype(np.int64)
        enc = AltoEncoding.encode(idx, shape)
        for m in range(len(shape)):
            np.testing.assert_array_equal(enc.decode(m), idx[:, m])

    def test_decode_range(self):
        rng = np.random.default_rng(3)
        idx = np.column_stack([rng.integers(0, 9, 50), rng.integers(0, 7, 50)])
        enc = AltoEncoding.encode(idx, (9, 7))
        np.testing.assert_array_equal(enc.decode(1, 10, 30), idx[10:30, 1])

    def test_code_order_is_lexicographic(self):
        """Mode-major packing: canonical (sorted) coordinates give sorted
        codes, so contiguous nonzero ranges are linearization ranges."""
        rng = np.random.default_rng(5)
        tensor = random_coo(rng, (13, 11, 7), 300)
        enc = AltoEncoding.encode(tensor.idx, tensor.shape)
        assert np.all(np.diff(enc.codes.astype(np.int64)) >= 0)

    def test_storage_is_one_word_per_nonzero(self):
        rng = np.random.default_rng(6)
        tensor = random_coo(rng, (10, 10, 10, 10), 200)
        enc = AltoEncoding.encode(tensor.idx, tensor.shape)
        assert enc.nbytes() == tensor.nnz * 8
        assert enc.nbytes() * 4 == tensor.idx.nbytes  # order-4: 4x smaller


class TestAlignedChunks:
    def test_boundaries_on_mode0_edges(self):
        mode0 = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 3])
        for k in (2, 3, 4):
            chunks = aligned_chunks(mode0, k)
            assert chunks[0][0] == 0 and chunks[-1][1] == len(mode0)
            for (_, b), (c, _) in zip(chunks, chunks[1:]):
                assert b == c
                assert mode0[b - 1] != mode0[b]  # never splits a row

    def test_heavy_slice_swallows_boundary(self):
        mode0 = np.zeros(100, dtype=np.int64)  # one giant slice
        assert aligned_chunks(mode0, 4) == [(0, 100)]

    def test_empty(self):
        assert aligned_chunks(np.zeros(0, dtype=np.int64), 3) == []

    @given(case=index_cases())
    @settings(max_examples=30, deadline=None)
    def test_partition_properties(self, case):
        shape, nnz, seed = case
        rng = np.random.default_rng(seed)
        tensor = random_coo(rng, shape, nnz) if nnz else None
        if tensor is None or tensor.nnz == 0:
            return
        mode0 = tensor.idx[:, 0]
        chunks = aligned_chunks(mode0, rng.integers(1, 6))
        covered = sum(hi - lo for lo, hi in chunks)
        assert covered == tensor.nnz
        for lo, hi in chunks:
            assert hi > lo
        for _, b in chunks[:-1]:
            assert mode0[b - 1] != mode0[b]


class TestAltoKernelBitwise:
    """alto backend == numpy backend, bit for bit (same float op order)."""

    @given(case=index_cases(), rank=hst.sampled_from([1, 8, 17]))
    @settings(max_examples=25, deadline=None)
    def test_engine_parity(self, case, rank):
        shape, nnz, seed = case
        if len(shape) < 3:
            return
        rng = np.random.default_rng(seed)
        tensor = random_coo(rng, shape, nnz)
        factors = random_factors(rng, shape, rank)
        strategy = S.balanced_binary(len(shape))
        ref = MemoizedMttkrp(tensor, strategy, factors, kernel="numpy")
        alto = MemoizedMttkrp(tensor, strategy, factors, kernel="alto")
        for mode in range(tensor.ndim):
            np.testing.assert_array_equal(
                ref.mttkrp(mode), alto.mttkrp(mode)
            )

    def test_parity_across_invalidations(self):
        rng = np.random.default_rng(11)
        tensor = random_coo(rng, (18, 25, 14, 21), 700)
        factors = random_factors(rng, tensor.shape, 16)
        for strategy in (S.balanced_binary(4), S.star(4)):
            ref = MemoizedMttkrp(tensor, strategy, factors, kernel="numpy")
            alto = MemoizedMttkrp(tensor, strategy, factors, kernel="alto")
            for _ in range(2):
                for mode in ref.mode_order:
                    np.testing.assert_array_equal(
                        ref.mttkrp(mode), alto.mttkrp(mode)
                    )
                    U = rng.standard_normal((tensor.shape[mode], 16))
                    ref.update_factor(mode, U)
                    alto.update_factor(mode, U)

    def test_fortran_order_factors(self):
        """Non-contiguous factor input must not change results."""
        rng = np.random.default_rng(13)
        tensor = random_coo(rng, (12, 10, 9), 150)
        factors = [np.asfortranarray(U)
                   for U in random_factors(rng, tensor.shape, 8)]
        ref = MemoizedMttkrp(tensor, "bdt", factors, kernel="numpy")
        alto = MemoizedMttkrp(tensor, "bdt", factors, kernel="alto")
        for mode in range(3):
            np.testing.assert_array_equal(ref.mttkrp(mode), alto.mttkrp(mode))

    def test_single_delta_mode_runs_numpy_path(self):
        """Star-strategy nodes have one delta mode: nothing to pack, the
        plain numpy path runs, results still bitwise equal."""
        rng = np.random.default_rng(17)
        tensor = random_coo(rng, (14, 11, 9), 200)
        factors = random_factors(rng, tensor.shape, 8)
        ref = MemoizedMttkrp(tensor, S.star(3), factors, kernel="numpy")
        alto = MemoizedMttkrp(tensor, S.star(3), factors, kernel="alto")
        for mode in range(3):
            np.testing.assert_array_equal(ref.mttkrp(mode), alto.mttkrp(mode))

    def test_packing_fallback_conditions(self):
        """_packed_for: False (cached) for single-mode and >63-bit nodes."""
        from repro.kernels.alto import PackedGather, _packed_for
        from repro.kernels.indices import NodeKernelIndex

        g = np.arange(6, dtype=np.intp)
        starts = np.array([0], dtype=np.intp)
        single = NodeKernelIndex(0, (1,), (g,), None, starts, 6, False)
        assert _packed_for(single, (64,)) is False
        assert single._alto is False  # checked once, cached

        wide = NodeKernelIndex(1, (0, 1), (g, g), None, starts, 6, False)
        assert _packed_for(wide, (1 << 32, 1 << 32)) is False

        ok = NodeKernelIndex(2, (0, 1), (g, g), None, starts, 6, False)
        packed = _packed_for(ok, (8, 8))
        assert isinstance(packed, PackedGather)
        assert _packed_for(ok, (8, 8)) is packed  # cached instance
        np.testing.assert_array_equal(packed.decode(0, 0, 6), g)
        np.testing.assert_array_equal(packed.decode(1, 0, 6), g)


class TestAltoCooMttkrp:
    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_bitwise_vs_numpy_layout(self, n_workers):
        rng = np.random.default_rng(21)
        tensor = random_coo(rng, (15, 12, 10, 8), 500)
        factors = random_factors(rng, tensor.shape, 8)
        with ParallelCooMttkrp(tensor, n_workers=n_workers) as ref, \
                AltoCooMttkrp(tensor, n_workers=n_workers) as alto:
            ref.set_factors(factors)
            alto.set_factors(factors)
            # Identical chunking is part of the bitwise contract.
            assert ref.chunks == alto.chunks
            for mode in range(tensor.ndim):
                np.testing.assert_array_equal(
                    ref.mttkrp(mode), alto.mttkrp(mode)
                )

    def test_order_6(self):
        rng = np.random.default_rng(23)
        tensor = random_coo(rng, (6, 5, 4, 3, 5, 4), 300)
        factors = random_factors(rng, tensor.shape, 5)
        with ParallelCooMttkrp(tensor, n_workers=2) as ref, \
                AltoCooMttkrp(tensor, n_workers=2) as alto:
            ref.set_factors(factors)
            alto.set_factors(factors)
            for mode in range(tensor.ndim):
                np.testing.assert_array_equal(
                    ref.mttkrp(mode), alto.mttkrp(mode)
                )
