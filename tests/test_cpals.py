"""Tests for the CP-ALS driver (repro.core.cpals)."""

import numpy as np
import pytest

from repro.baselines import CooMttkrp, SplattMttkrp, TtvMttkrp
from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.cpals import cp_als, initialize_factors
from repro.synth.lowrank import lowrank_tensor

from .helpers import random_coo


@pytest.fixture(scope="module")
def planted():
    # Fully observed planted model: exactly rank 3, so CP-ALS can reach fit 1.
    shape = (12, 10, 8, 6)
    nnz = int(np.prod(shape))
    return lowrank_tensor(shape, rank=3, nnz=nnz, random_state=0)


class TestInitialization:
    def test_random_shapes(self):
        t = CooTensor.empty((4, 5, 6))
        factors = initialize_factors(t, 3, "random", random_state=0)
        assert [U.shape for U in factors] == [(4, 3), (5, 3), (6, 3)]

    def test_random_deterministic(self):
        t = CooTensor.empty((4, 5))
        a = initialize_factors(t, 2, "random", random_state=7)
        b = initialize_factors(t, 2, "random", random_state=7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_hosvd_shapes(self):
        rng = np.random.default_rng(0)
        t = random_coo(rng, (8, 9, 7), 100)
        factors = initialize_factors(t, 3, "hosvd", random_state=0)
        assert [U.shape for U in factors] == [(8, 3), (9, 3), (7, 3)]

    def test_explicit_factors_validated(self):
        t = CooTensor.empty((4, 5))
        good = [np.ones((4, 2)), np.ones((5, 2))]
        out = initialize_factors(t, 2, good)
        assert out[0] is not good[0]  # copied
        with pytest.raises(ValueError):
            initialize_factors(t, 3, good)

    def test_unknown_init(self):
        with pytest.raises(ValueError):
            initialize_factors(CooTensor.empty((2, 2)), 1, "nope")


class TestConvergence:
    @pytest.mark.parametrize("strategy", ["star", "bdt", "chain", "two_way"])
    def test_fit_monotone_nondecreasing(self, planted, strategy):
        result = cp_als(
            planted.tensor, rank=3, strategy=strategy, n_iter_max=15,
            tol=0.0, random_state=1,
        )
        fits = np.array(result.fits)
        assert (np.diff(fits) >= -1e-9).all(), fits

    def test_noiseless_recovery(self, planted):
        result = cp_als(
            planted.tensor, rank=3, strategy="bdt", n_iter_max=60,
            tol=1e-12, random_state=2,
        )
        assert result.fit > 0.999
        # Planted factors recovered up to permutation/scaling.
        assert result.ktensor.congruence(planted.ktensor) > 0.95

    def test_strategies_agree_exactly(self, planted):
        """Identical init -> every strategy produces the identical trajectory."""
        results = [
            cp_als(planted.tensor, rank=3, strategy=s, n_iter_max=5,
                   tol=0.0, random_state=3)
            for s in ("star", "bdt", S.chain(4, 2))
        ]
        for other in results[1:]:
            np.testing.assert_allclose(results[0].fits, other.fits, rtol=1e-8)

    def test_convergence_flag(self, planted):
        result = cp_als(
            planted.tensor, rank=3, strategy="bdt", n_iter_max=100,
            tol=1e-6, random_state=4,
        )
        assert result.converged
        assert result.n_iterations < 100

    def test_tol_zero_runs_all_iterations(self, planted):
        result = cp_als(
            planted.tensor, rank=3, strategy="star", n_iter_max=4,
            tol=0.0, random_state=5,
        )
        assert result.n_iterations == 4
        assert not result.converged

    def test_hosvd_init_converges(self, planted):
        result = cp_als(
            planted.tensor, rank=3, strategy="bdt", n_iter_max=30,
            init="hosvd", random_state=6,
        )
        assert result.fit > 0.99


class TestBackends:
    @pytest.mark.parametrize("backend_cls", [CooMttkrp, TtvMttkrp, SplattMttkrp])
    def test_engine_factory_backends(self, planted, backend_cls):
        memoized = cp_als(
            planted.tensor, rank=2, strategy="bdt", n_iter_max=4, tol=0.0,
            random_state=7,
        )
        via_backend = cp_als(
            planted.tensor, rank=2, n_iter_max=4, tol=0.0, random_state=7,
            engine_factory=backend_cls,
        )
        np.testing.assert_allclose(memoized.fits, via_backend.fits, rtol=1e-8)
        assert via_backend.strategy_name == backend_cls.name

    def test_auto_strategy_uses_planner(self, planted):
        result = cp_als(
            planted.tensor, rank=2, strategy="auto", n_iter_max=2, tol=0.0,
            random_state=8,
        )
        assert result.planner_report is not None
        assert result.strategy_name == (
            result.planner_report.best.strategy.name
        )


class TestValidation:
    def test_bad_rank(self, planted):
        with pytest.raises((TypeError, ValueError)):
            cp_als(planted.tensor, rank=0)

    def test_bad_tol(self, planted):
        with pytest.raises(ValueError):
            cp_als(planted.tensor, rank=2, tol=-1.0)

    def test_order_one_rejected(self):
        with pytest.raises(ValueError):
            cp_als(CooTensor.empty((5,)), rank=1)

    def test_callback_invoked(self, planted):
        seen = []
        cp_als(
            planted.tensor, rank=2, strategy="star", n_iter_max=3, tol=0.0,
            random_state=9,
            callback=lambda it, fit, model: seen.append((it, fit)),
        )
        assert [it for it, _ in seen] == [0, 1, 2]

    def test_timings_populated(self, planted):
        result = cp_als(planted.tensor, rank=2, strategy="bdt",
                        n_iter_max=2, tol=0.0, random_state=10)
        assert result.timings["total"] >= result.timings["setup"]
        assert result.timings["per_iteration"] > 0


class TestEdgeCases:
    def test_rank_exceeding_mode_size(self):
        planted = lowrank_tensor((3, 9, 9), rank=2, nnz=3 * 9 * 9,
                                 random_state=11)
        result = cp_als(planted.tensor, rank=5, strategy="bdt",
                        n_iter_max=10, random_state=11)
        assert result.fit > 0.9

    def test_two_mode_tensor(self):
        planted = lowrank_tensor((15, 12), rank=2, nnz=15 * 12,
                                 random_state=12)
        result = cp_als(planted.tensor, rank=2, strategy="star",
                        n_iter_max=40, random_state=12)
        assert result.fit > 0.99

    def test_integer_valued_tensor(self):
        rng = np.random.default_rng(13)
        idx = np.column_stack([rng.integers(0, 6, 80) for _ in range(3)])
        t = CooTensor(idx, rng.integers(1, 5, 80).astype(float), (6, 6, 6))
        result = cp_als(t, rank=4, strategy="bdt", n_iter_max=20,
                        random_state=13)
        assert 0.0 < result.fit <= 1.0
