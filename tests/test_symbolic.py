"""Tests for the symbolic contraction phase (repro.core.symbolic)."""

import math

import numpy as np
import pytest

from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.rowcodes import lexsort_rows
from repro.core.symbolic import SymbolicTree

from .helpers import random_coo


@pytest.fixture
def tensor():
    return random_coo(np.random.default_rng(0), (5, 6, 4, 7), 60)


class TestStructure:
    def test_root_aliases_tensor_index(self, tensor):
        sym = SymbolicTree(tensor, S.balanced_binary(4))
        root = sym.nodes[sym.strategy.root_id]
        assert root.index is tensor.idx
        assert root.plan is None

    def test_node_indices_unique_and_sorted(self, tensor):
        sym = SymbolicTree(tensor, S.balanced_binary(4))
        for node_sym in sym.nodes:
            idx = node_sym.index
            if idx.shape[0] > 1:
                order = lexsort_rows(idx)
                assert np.array_equal(order, np.arange(idx.shape[0]))
                dup = np.all(idx[1:] == idx[:-1], axis=1)
                assert not dup.any()

    def test_node_nnz_equals_distinct_projections(self, tensor):
        sym = SymbolicTree(tensor, S.balanced_binary(4))
        for node_sym in sym.nodes:
            cols = [list(node_sym.modes).index(m) for m in node_sym.modes]
            mode_cols = list(node_sym.modes)
            expected = np.unique(tensor.idx[:, mode_cols], axis=0).shape[0]
            assert node_sym.nnz == expected, node_sym.modes

    def test_plan_maps_parent_rows_to_node_rows(self, tensor):
        strategy = S.balanced_binary(4)
        sym = SymbolicTree(tensor, strategy)
        for node in strategy.nodes:
            if node.is_root:
                continue
            node_sym = sym.nodes[node.id]
            parent_sym = sym.nodes[node.parent]
            keep_cols = [
                list(parent_sym.modes).index(m) for m in node_sym.modes
            ]
            # Reducing the parent's projected rows through the plan must land
            # each parent row on the matching node row.
            proj = parent_sym.index[:, keep_cols]
            onehots = np.ones((parent_sym.nnz, 1))
            counts = node_sym.plan.reduce(onehots)[:, 0]
            # Each node row's count equals its multiplicity in the parent.
            _, ref_counts = np.unique(proj, axis=0, return_counts=True)
            np.testing.assert_array_equal(counts, ref_counts)

    def test_delta_cols_point_at_delta_modes(self, tensor):
        strategy = S.from_nested(((0, 2), (1, 3)))
        sym = SymbolicTree(tensor, strategy)
        for node in strategy.nodes:
            if node.is_root:
                continue
            node_sym = sym.nodes[node.id]
            parent_modes = strategy.nodes[node.parent].modes
            for d_mode, d_col in zip(
                node_sym.delta_modes, node_sym.delta_parent_cols
            ):
                assert parent_modes[d_col] == d_mode

    def test_leaf_index_single_column(self, tensor):
        sym = SymbolicTree(tensor, S.star(4))
        for mode in range(4):
            leaf = sym.nodes[sym.strategy.leaf_id(mode)]
            assert leaf.index.shape[1] == 1
            used = np.unique(tensor.idx[:, mode])
            np.testing.assert_array_equal(leaf.index[:, 0], used)

    def test_wrong_mode_count_rejected(self, tensor):
        with pytest.raises(ValueError):
            SymbolicTree(tensor, S.star(3))

    def test_empty_tensor(self):
        sym = SymbolicTree(CooTensor.empty((3, 4, 5)), S.star(3))
        for node_sym in sym.nodes:
            assert node_sym.nnz == 0


class TestAccounting:
    def test_index_nbytes_is_sum(self, tensor):
        sym = SymbolicTree(tensor, S.balanced_binary(4))
        assert sym.index_nbytes() == sum(
            n.index_nbytes() for n in sym.nodes
        )

    def test_compression_ratios_at_least_one_for_skewed(self):
        # Tensor with a single repeated (i, j) prefix: huge overlap.
        idx = np.array([[0, 0, k, k % 3] for k in range(9)])
        t = CooTensor(idx, np.ones(9), (2, 2, 9, 3))
        sym = SymbolicTree(t, S.two_way(4, split=2))
        ratios = sym.compression_ratios()
        internal_01 = next(
            nid for nid, node in enumerate(sym.strategy.nodes)
            if node.modes == (0, 1)
        )
        assert ratios[internal_01] == pytest.approx(9.0)

    def test_total_index_storage_bound(self, tensor):
        """Theorem: BDT stores at most N*(ceil(log N)+1) index arrays."""
        sym = SymbolicTree(tensor, S.balanced_binary(4))
        n_index_arrays = sum(len(n.modes) for n in sym.strategy.nodes)
        assert n_index_arrays <= 4 * (math.ceil(math.log2(4)) + 1)

    def test_node_nnz_list_matches(self, tensor):
        sym = SymbolicTree(tensor, S.chain(4, 2))
        assert sym.node_nnz() == [n.nnz for n in sym.nodes]
