"""Tests for the baseline MTTKRP backends (repro.baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.baselines import (CooMttkrp, SplattMttkrp, TtvMttkrp,
                             backend_names, coo_mttkrp, make_backend,
                             splatt_mttkrp, ttv_chain)
from repro.core.coo import CooTensor
from repro.core.engine import MemoizedMttkrp
from repro.perf import counting

from .helpers import dense_mttkrp, random_coo, random_factors

BACKENDS = [CooMttkrp, TtvMttkrp, SplattMttkrp]


@pytest.mark.parametrize("backend_cls", BACKENDS)
class TestAgainstDense:
    def test_all_modes_3d(self, backend_cls):
        rng = np.random.default_rng(0)
        t = random_coo(rng, (5, 6, 7), 50)
        factors = random_factors(rng, t.shape, 4)
        backend = backend_cls(t)
        backend.set_factors(factors)
        dense = t.to_dense()
        for mode in range(3):
            np.testing.assert_allclose(
                backend.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_all_modes_5d(self, backend_cls):
        rng = np.random.default_rng(1)
        t = random_coo(rng, (3, 4, 5, 3, 4), 40)
        factors = random_factors(rng, t.shape, 2)
        backend = backend_cls(t)
        backend.set_factors(factors)
        dense = t.to_dense()
        for mode in range(5):
            np.testing.assert_allclose(
                backend.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_empty_tensor(self, backend_cls):
        t = CooTensor.empty((3, 4, 5))
        backend = backend_cls(t)
        backend.set_factors(random_factors(np.random.default_rng(2), t.shape, 3))
        out = backend.mttkrp(1)
        assert out.shape == (4, 3)
        np.testing.assert_array_equal(out, 0.0)

    def test_update_factor(self, backend_cls):
        rng = np.random.default_rng(3)
        t = random_coo(rng, (4, 4, 4), 30)
        factors = random_factors(rng, t.shape, 2)
        backend = backend_cls(t)
        backend.set_factors(factors)
        backend.mttkrp(0)
        newU = rng.standard_normal((4, 2))
        backend.update_factor(1, newU)
        factors[1] = newU
        np.testing.assert_allclose(
            backend.mttkrp(0),
            dense_mttkrp(t.to_dense(), factors, 0),
            rtol=1e-10, atol=1e-10,
        )

    def test_requires_factors(self, backend_cls):
        backend = backend_cls(CooTensor.empty((2, 2)))
        with pytest.raises(RuntimeError):
            backend.mttkrp(0)

    def test_bad_update_shape(self, backend_cls):
        rng = np.random.default_rng(4)
        t = random_coo(rng, (3, 3, 3), 10)
        backend = backend_cls(t)
        backend.set_factors(random_factors(rng, t.shape, 2))
        with pytest.raises(ValueError):
            backend.update_factor(0, np.zeros((5, 2)))


class TestCrossBackendAgreement:
    @given(hst.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_all_backends_and_engine_agree(self, seed):
        rng = np.random.default_rng(seed)
        t = random_coo(rng, (4, 5, 3, 4), 35)
        factors = random_factors(rng, t.shape, 3)
        outputs = []
        for backend_cls in BACKENDS:
            b = backend_cls(t)
            b.set_factors(factors)
            outputs.append([b.mttkrp(m) for m in range(4)])
        eng = MemoizedMttkrp(t, "bdt", factors)
        outputs.append([eng.mttkrp(m) for m in range(4)])
        ref = outputs[0]
        for other in outputs[1:]:
            for a, b in zip(ref, other):
                np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)


class TestFunctionalForms:
    def test_coo_mttkrp(self):
        rng = np.random.default_rng(5)
        t = random_coo(rng, (4, 5, 6), 25)
        factors = random_factors(rng, t.shape, 2)
        np.testing.assert_allclose(
            coo_mttkrp(t, factors, 1),
            dense_mttkrp(t.to_dense(), factors, 1),
            rtol=1e-10, atol=1e-10,
        )

    def test_splatt_mttkrp(self):
        rng = np.random.default_rng(6)
        t = random_coo(rng, (4, 5, 6), 25)
        factors = random_factors(rng, t.shape, 2)
        np.testing.assert_allclose(
            splatt_mttkrp(t, factors, 2),
            dense_mttkrp(t.to_dense(), factors, 2),
            rtol=1e-10, atol=1e-10,
        )


class TestTtvChain:
    def test_full_contraction_scalar(self):
        rng = np.random.default_rng(7)
        t = random_coo(rng, (3, 4), 8)
        u, v = rng.random(3), rng.random(4)
        out = ttv_chain(t, {0: u, 1: v})
        assert out.shape == ()
        assert out == pytest.approx(float(u @ t.to_dense() @ v))

    def test_partial_contraction(self):
        rng = np.random.default_rng(8)
        t = random_coo(rng, (3, 4, 5), 20)
        v = rng.random(4)
        out = ttv_chain(t, {1: v})
        expected = np.tensordot(t.to_dense(), v, axes=([1], [0]))
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_distributive_property(self):
        """TTV distributes over nonzero splits (Lemma: sum of parts)."""
        rng = np.random.default_rng(9)
        t = random_coo(rng, (4, 4, 4), 30)
        v = rng.random(4)
        parts = t.split_nonzeros(3)
        total = sum(ttv_chain(p, {2: v}) for p in parts)
        np.testing.assert_allclose(total, ttv_chain(t, {2: v}), atol=1e-12)

    def test_bad_vector_length(self):
        t = CooTensor.empty((3, 4))
        with pytest.raises(ValueError):
            ttv_chain(t, {0: np.ones(5)})


class TestCounters:
    def test_coo_flop_count(self):
        rng = np.random.default_rng(10)
        t = random_coo(rng, (5, 5, 5), 40)
        b = CooMttkrp(t)
        b.set_factors(random_factors(rng, t.shape, 4))
        with counting() as c:
            b.mttkrp(0)
        assert c.flops == t.nnz * 4 * 3  # nnz * R * (N-1+1)
        assert c.mttkrps == 1

    def test_splatt_counts_less_than_coo_on_overlapping_tensor(self):
        idx = np.array([[0, 0, k] for k in range(20)] + [[1, 1, k] for k in range(20)])
        t = CooTensor(idx, np.ones(40), (2, 2, 20))
        factors = random_factors(np.random.default_rng(11), t.shape, 4)
        coo_b, splatt_b = CooMttkrp(t), SplattMttkrp(t)
        coo_b.set_factors(factors)
        splatt_b.set_factors(factors)
        with counting() as c_coo:
            coo_b.mttkrp(0)
        with counting() as c_splatt:
            splatt_b.mttkrp(0)
        assert c_splatt.flops < c_coo.flops  # fiber compression pays


class TestRegistry:
    def test_names(self):
        assert set(backend_names()) == {"coo", "splatt", "splatt1", "ttv"}

    def test_make_baselines(self):
        t = CooTensor.empty((2, 2, 2))
        for name in backend_names():
            assert make_backend(name, t).tensor is t

    def test_make_memoized_variants(self):
        t = CooTensor.empty((2, 2, 2))
        eng = make_backend("memoized:star", t)
        assert eng.strategy.name == "star"
        default = make_backend("memoized", t)
        assert default.strategy.name == "bdt"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_backend("nope", CooTensor.empty((2, 2)))
