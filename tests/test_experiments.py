"""Integration tests for the experiment harness (repro.experiments).

Each experiment runs end-to-end at smoke-test scale; assertions target the
harness mechanics (structure, persistence, judging) rather than the
performance claims themselves, which depend on machine and scale and are
asserted by the benchmark suite at benchmark scale.
"""

import json
import os

import pytest

from repro.experiments import (ExperimentResult, e1_datasets, e2_opcounts,
                               e6_memory, e9_ablations)
from repro.experiments.common import geometric_mean, iteration_seconds, setup_seconds
from repro.experiments.runner import (judge, run_experiments, write_reports)
from repro.synth.datasets import load_dataset

SCALE = 0.02


class TestCommon:
    def test_iteration_seconds_positive(self):
        tensor = load_dataset("nips", scale=SCALE)
        t = iteration_seconds(tensor, "coo", 4, repeats=1)
        assert t > 0

    def test_iteration_seconds_with_factory(self):
        from repro.core.engine import MemoizedMttkrp

        tensor = load_dataset("nips", scale=SCALE)
        t = iteration_seconds(
            tensor, lambda t: MemoizedMttkrp(t, "bdt"), 4, repeats=1
        )
        assert t > 0

    def test_setup_seconds(self):
        tensor = load_dataset("nips", scale=SCALE)
        assert setup_seconds(tensor, "splatt", 4) > 0
        assert setup_seconds(tensor, "memoized:bdt", 4) > 0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) != geometric_mean([])  # NaN

    def test_result_json_roundtrip(self):
        result = e1_datasets.run(scale=SCALE, names=["nips"])
        data = json.loads(result.to_json())
        assert data["exp_id"] == "E1"
        assert len(data["rows"]) == 1


class TestIndividualExperiments:
    def test_e1_structure(self):
        result = e1_datasets.run(scale=SCALE, names=["nips", "rand4d"])
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 2
        assert len(result.headers) == len(result.rows[0])

    def test_e2_counts_grow_with_order(self):
        result = e2_opcounts.run(scale=SCALE, rank=4, orders=(3, 5))
        ratios = result.observations["flop_ratio_by_order"]
        assert set(ratios) == {3, 5}
        assert all(r >= 1.0 for r in ratios.values())

    def test_e6_deterministic(self):
        a = e6_memory.run(scale=SCALE, rank=4, orders=(3, 4))
        b = e6_memory.run(scale=SCALE, rank=4, orders=(3, 4))
        assert a.rows == b.rows

    def test_e9b_monotone_in_skew(self):
        result = e9_ablations.run_skew_sensitivity(
            nnz=5000, dim=80, exponents=(0.0, 1.5), rank=4
        )
        ratios = result.observations["ratio_by_exponent"]
        assert ratios[1.5] >= ratios[0.0] - 0.05


class TestRunner:
    def test_run_selected(self):
        results = run_experiments(["E1"], scale=SCALE, rank=4)
        assert len(results) == 1
        assert results[0].exp_id == "E1"

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["E99"], scale=SCALE, rank=4)

    def test_judge_verdicts(self):
        result = e1_datasets.run(scale=SCALE, names=["skew4d"])
        assert judge(result) in ("yes", "NO (see table)")
        unknown = ExperimentResult(
            exp_id="EX", title="t", headers=[], rows=[],
            expected_shape="none",
        )
        assert judge(unknown) == "n/a"

    def test_write_reports(self, tmp_path):
        results = run_experiments(["E1"], scale=SCALE, rank=4)
        md = tmp_path / "EXP.md"
        write_reports(
            results, str(tmp_path / "results"), str(md),
            scale=SCALE, rank=4, elapsed=1.0,
        )
        assert (tmp_path / "results" / "e1.txt").exists()
        assert (tmp_path / "results" / "e1.json").exists()
        text = md.read_text()
        assert "E1" in text and "reproduced?" in text

    def test_write_reports_no_md(self, tmp_path):
        results = run_experiments(["E1"], scale=SCALE, rank=4)
        write_reports(results, str(tmp_path / "results"), None,
                      scale=SCALE, rank=4, elapsed=1.0)
        assert not (tmp_path / "EXPERIMENTS.md").exists()


class TestExtensionExperiments:
    def test_e10_gradient_kernel_structure(self):
        from repro.experiments import e10_extensions

        result = e10_extensions.run_gradient_kernel(
            scale=SCALE, rank=4, names=("nips",), repeats=1
        )
        assert result.exp_id == "E10a"
        assert len(result.rows) == 1
        assert result.observations["sweep_speedup"]["nips"] > 0

    def test_e10_restart_amortization_positive(self):
        from repro.experiments import e10_extensions

        result = e10_extensions.run_restart_amortization(
            scale=SCALE, rank=4, name="nips", n_restarts=2, n_iter=2
        )
        assert result.observations["restart_speedup"] > 0

    def test_e10_ncp_parity_runs(self):
        from repro.experiments import e10_extensions

        result = e10_extensions.run_ncp_parity(
            scale=SCALE, rank=4, name="choa", n_iter=2
        )
        assert result.observations["time_ratio"] > 0

    def test_e11_storage_structure(self):
        from repro.experiments import e11_storage

        result = e11_storage.run(scale=SCALE, names=["nips", "enron"])
        assert len(result.rows) == 2
        obs = result.observations
        assert obs["max_tree_ratio"] <= obs["log_bound"]
        assert set(obs["hicoo_ratio_by_dataset"]) == {"nips", "enron"}

    def test_run_experiments_includes_extensions(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "E10" in EXPERIMENTS and "E11" in EXPERIMENTS
