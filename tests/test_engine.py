"""Correctness tests for the memoized MTTKRP engine (repro.core.engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.engine import MemoizedMttkrp, contraction_work
from repro.core.symbolic import SymbolicTree
from repro.perf import counting

from .helpers import dense_mttkrp, random_coo, random_factors

RANK = 5


def make_engine(rng, shape, nnz, strategy):
    tensor = random_coo(rng, shape, nnz)
    factors = random_factors(rng, shape, RANK)
    eng = MemoizedMttkrp(tensor, strategy, factors)
    return tensor, factors, eng


ALL_STRATEGIES_4D = [
    S.star(4),
    S.two_way(4),
    S.chain(4, 1),
    S.chain(4, 2),
    S.balanced_binary(4),
    S.from_nested((0, (1, 2, 3))),
    S.from_nested(((0, 2), (1, 3))),  # non-contiguous grouping
]


class TestAgreementWithDense:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES_4D, ids=lambda s: s.name + str(s.to_nested()))
    def test_all_modes_4d(self, strategy):
        rng = np.random.default_rng(0)
        tensor, factors, eng = make_engine(rng, (5, 6, 4, 7), 60, strategy)
        dense = tensor.to_dense()
        for mode in range(4):
            expected = dense_mttkrp(dense, factors, mode)
            np.testing.assert_allclose(
                eng.mttkrp(mode), expected, rtol=1e-10, atol=1e-10
            )

    @pytest.mark.parametrize("order", [2, 3, 5, 6])
    def test_bdt_other_orders(self, order):
        rng = np.random.default_rng(order)
        shape = tuple(rng.integers(3, 7, size=order))
        tensor, factors, eng = make_engine(rng, shape, 40, S.balanced_binary(order))
        dense = tensor.to_dense()
        for mode in range(order):
            np.testing.assert_allclose(
                eng.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_empty_tensor(self):
        tensor = CooTensor.empty((3, 4, 5))
        factors = random_factors(np.random.default_rng(1), (3, 4, 5), RANK)
        eng = MemoizedMttkrp(tensor, "bdt", factors)
        for mode in range(3):
            out = eng.mttkrp(mode)
            assert out.shape == (tensor.shape[mode], RANK)
            np.testing.assert_array_equal(out, 0.0)

    def test_rank_one(self):
        rng = np.random.default_rng(2)
        tensor = random_coo(rng, (4, 4, 4), 20)
        factors = random_factors(rng, (4, 4, 4), 1)
        eng = MemoizedMttkrp(tensor, "star", factors)
        np.testing.assert_allclose(
            eng.mttkrp(0),
            dense_mttkrp(tensor.to_dense(), factors, 0),
            rtol=1e-10, atol=1e-10,
        )

    @given(hst.integers(1, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_strategy_equivalence(self, seed):
        """Every strategy computes the identical MTTKRP."""
        rng = np.random.default_rng(seed)
        tensor = random_coo(rng, (4, 5, 3, 4), 35)
        factors = random_factors(rng, tensor.shape, 3)
        reference = None
        for strategy in (S.star(4), S.balanced_binary(4), S.chain(4, 2)):
            eng = MemoizedMttkrp(tensor, strategy, factors)
            outs = [eng.mttkrp(m) for m in range(4)]
            if reference is None:
                reference = outs
            else:
                for a, b in zip(reference, outs):
                    np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)


class TestInvalidation:
    def test_update_changes_result(self):
        rng = np.random.default_rng(3)
        tensor, factors, eng = make_engine(rng, (4, 4, 4, 4), 30, S.balanced_binary(4))
        before = eng.mttkrp(0).copy()
        newU = rng.standard_normal((4, RANK))
        eng.update_factor(1, newU)
        factors[1] = newU
        after = eng.mttkrp(0)
        expected = dense_mttkrp(tensor.to_dense(), factors, 0)
        np.testing.assert_allclose(after, expected, rtol=1e-10, atol=1e-10)
        assert not np.allclose(before, after)

    def test_stale_cache_never_served(self):
        """Random interleavings of updates and queries always match dense."""
        rng = np.random.default_rng(4)
        tensor, factors, eng = make_engine(rng, (4, 5, 3, 4), 40, S.balanced_binary(4))
        for step in range(30):
            mode = int(rng.integers(0, 4))
            if rng.random() < 0.5:
                U = rng.standard_normal((tensor.shape[mode], RANK))
                eng.update_factor(mode, U)
                factors[mode] = U
            else:
                np.testing.assert_allclose(
                    eng.mttkrp(mode),
                    dense_mttkrp(tensor.to_dense(), factors, mode),
                    rtol=1e-9, atol=1e-9,
                )

    def test_cache_reuse_no_rebuild(self):
        rng = np.random.default_rng(5)
        _, _, eng = make_engine(rng, (4, 4, 4, 4), 30, S.balanced_binary(4))
        with counting() as c1:
            eng.mttkrp(0)
        assert c1.node_builds > 0
        with counting() as c2:
            eng.mttkrp(0)  # cached: no rebuild
        assert c2.node_builds == 0

    def test_sibling_reuses_shared_parent(self):
        rng = np.random.default_rng(6)
        _, _, eng = make_engine(rng, (4, 4, 4, 4), 30, S.balanced_binary(4))
        eng.mttkrp(0)
        with counting() as c:
            eng.mttkrp(1)  # shares the (0,1) internal node with leaf 0
        assert c.node_builds == 1  # only the leaf itself

    def test_set_factors_drops_cache(self):
        rng = np.random.default_rng(7)
        tensor, factors, eng = make_engine(rng, (4, 4, 4), 20, S.star(3))
        eng.mttkrp(0)
        new_factors = random_factors(rng, tensor.shape, RANK)
        eng.set_factors(new_factors)
        np.testing.assert_allclose(
            eng.mttkrp(0),
            dense_mttkrp(tensor.to_dense(), new_factors, 0),
            rtol=1e-10, atol=1e-10,
        )


class TestScheduleTheorems:
    """Property tests of the memoization literature's work/memory bounds."""

    @pytest.mark.parametrize("order", [3, 4, 5, 6, 8])
    def test_builds_per_iteration_equals_nonroot_nodes(self, order):
        """Post-order mode updates rebuild each node exactly once/iteration."""
        rng = np.random.default_rng(order)
        shape = tuple([5] * order)
        strategy = S.balanced_binary(order)
        tensor = random_coo(rng, shape, 60)
        eng = MemoizedMttkrp(tensor, strategy, random_factors(rng, shape, 3))
        # Warm-up iteration then measure a steady-state iteration.
        for _ in range(2):
            with counting() as c:
                for n in eng.mode_order:
                    eng.mttkrp(n)
                    eng.update_factor(
                        n, rng.standard_normal((shape[n], 3))
                    )
        n_nonroot = len(strategy.nodes) - 1
        assert c.node_builds == n_nonroot

    @pytest.mark.parametrize("order", [4, 6, 8])
    def test_contraction_count_bound(self, order):
        """Theorem: <= N * ceil(log2 N) contractions per BDT iteration."""
        import math

        rng = np.random.default_rng(order)
        shape = tuple([4] * order)
        tensor = random_coo(rng, shape, 50)
        eng = MemoizedMttkrp(
            tensor, S.balanced_binary(order), random_factors(rng, shape, 2)
        )
        for _ in range(2):
            with counting() as c:
                for n in eng.mode_order:
                    eng.mttkrp(n)
                    eng.update_factor(n, rng.standard_normal((shape[n], 2)))
        assert c.contractions <= order * math.ceil(math.log2(order))
        assert c.contractions == S.balanced_binary(order).contractions_per_iteration()

    @pytest.mark.parametrize("order", [4, 6, 8])
    def test_live_value_matrices_bound(self, order):
        """Theorem: <= ceil(log2 N)+1 cached non-root nodes at any instant."""
        import math

        rng = np.random.default_rng(order)
        shape = tuple([4] * order)
        tensor = random_coo(rng, shape, 50)
        strategy = S.balanced_binary(order)
        eng = MemoizedMttkrp(tensor, strategy, random_factors(rng, shape, 2))
        peak = 0
        for _ in range(2):
            for n in eng.mode_order:
                eng.mttkrp(n)
                peak = max(peak, len(eng.cached_node_ids()))
                eng.update_factor(n, rng.standard_normal((shape[n], 2)))
        assert peak <= math.ceil(math.log2(order)) + 1

    def test_star_contractions_n_times_n_minus_1(self):
        rng = np.random.default_rng(11)
        shape = (4, 4, 4, 4)
        tensor = random_coo(rng, shape, 40)
        eng = MemoizedMttkrp(tensor, S.star(4), random_factors(rng, shape, 2))
        with counting() as c:
            for n in eng.mode_order:
                eng.mttkrp(n)
                eng.update_factor(n, rng.standard_normal((4, 2)))
        assert c.contractions == 4 * 3


class TestApi:
    def test_factors_required(self):
        tensor = CooTensor.empty((2, 2))
        eng = MemoizedMttkrp(tensor, "star")
        with pytest.raises(RuntimeError):
            eng.mttkrp(0)
        with pytest.raises(RuntimeError):
            _ = eng.rank

    def test_bad_factor_shape_on_update(self):
        rng = np.random.default_rng(12)
        _, _, eng = make_engine(rng, (3, 3, 3), 10, S.star(3))
        with pytest.raises(ValueError):
            eng.update_factor(0, np.zeros((4, RANK)))

    def test_mode_out_of_range(self):
        rng = np.random.default_rng(13)
        _, _, eng = make_engine(rng, (3, 3, 3), 10, S.star(3))
        with pytest.raises(ValueError):
            eng.mttkrp(3)

    def test_negative_mode(self):
        rng = np.random.default_rng(14)
        tensor, factors, eng = make_engine(rng, (3, 4, 5), 15, S.star(3))
        np.testing.assert_allclose(eng.mttkrp(-1), eng.mttkrp(2))

    def test_prebuilt_symbolic_reuse(self):
        rng = np.random.default_rng(15)
        tensor = random_coo(rng, (4, 4, 4), 20)
        strat = S.balanced_binary(3)
        sym = SymbolicTree(tensor, strat)
        factors = random_factors(rng, tensor.shape, RANK)
        eng = MemoizedMttkrp(tensor, strat, factors, symbolic=sym)
        assert eng.symbolic is sym
        np.testing.assert_allclose(
            eng.mttkrp(0),
            dense_mttkrp(tensor.to_dense(), factors, 0),
            rtol=1e-10, atol=1e-10,
        )

    def test_prebuilt_symbolic_wrong_tensor_rejected(self):
        rng = np.random.default_rng(16)
        t1 = random_coo(rng, (4, 4, 4), 20)
        t2 = random_coo(rng, (4, 4, 4), 20)
        sym = SymbolicTree(t1, S.star(3))
        with pytest.raises(ValueError):
            MemoizedMttkrp(t2, S.star(3), symbolic=sym)

    def test_node_tensor_materialization(self):
        rng = np.random.default_rng(17)
        tensor, factors, eng = make_engine(rng, (3, 4, 5), 20, S.star(3))
        root = eng.node_tensor(eng.strategy.root_id)
        assert root.nnz == tensor.nnz
        np.testing.assert_allclose(root.vals[:, 0], tensor.vals)

    def test_live_value_bytes_tracks_cache(self):
        rng = np.random.default_rng(18)
        _, _, eng = make_engine(rng, (4, 4, 4, 4), 30, S.balanced_binary(4))
        assert eng.live_value_bytes() == 0
        eng.mttkrp(0)
        assert eng.live_value_bytes() > 0


def test_contraction_work_formula():
    flops, words = contraction_work(100, 8, 3)
    assert flops == 100 * 8 * 4
    assert words == 100 * 8 * 5
