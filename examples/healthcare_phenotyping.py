"""Computational phenotyping on an EHR-style tensor (CHOA analog).

The motivating application of higher-order sparse CP in the paper's line of
work: decompose a patient x diagnosis x procedure count tensor; each CP
component is a candidate *phenotype* — a group of diagnoses and procedures
that co-occur across a subpopulation of patients.

Run:  python examples/healthcare_phenotyping.py
"""

import numpy as np

import repro
from repro.synth.datasets import get_spec

RANK = 8  # number of candidate phenotypes

# ---------------------------------------------------------------------------
# 1. Load the EHR analog (patient x diagnosis x procedure counts).
# ---------------------------------------------------------------------------
spec = get_spec("choa")
X = repro.synth.load_dataset("choa", scale=0.2)
print(f"EHR tensor ({spec.description}): {X}")

# ---------------------------------------------------------------------------
# 2. Decompose.  Count data: use nonnegative-leaning random init and a few
#    restarts, keeping the best fit — the standard CP workflow.  The
#    symbolic/planning work is shared across restarts via the engine cache
#    inside each run; the planner runs once here and its strategy is reused.
# ---------------------------------------------------------------------------
chosen = repro.plan(X, rank=RANK).best.strategy
print(f"planner selected: {chosen.name}  spec={chosen.to_nested()}")

best = None
for restart in range(3):
    result = repro.cp_als(
        X, rank=RANK, strategy=chosen, n_iter_max=40, tol=1e-7,
        random_state=restart,
    )
    print(f"  restart {restart}: fit={result.fit:.4f} "
          f"({result.n_iterations} iters)")
    if best is None or result.fit > best.fit:
        best = result

model = best.ktensor.arrange()  # components sorted by weight
print(f"\nbest fit: {best.fit:.4f}")

# ---------------------------------------------------------------------------
# 3. Read out phenotypes: top diagnoses/procedures per component.
# ---------------------------------------------------------------------------
MODE_NAMES = ["patient", "diagnosis", "procedure"]
TOP_K = 4
print(f"\ntop-{TOP_K} items per mode for the 3 heaviest components:")
for r in range(min(3, RANK)):
    print(f"\nphenotype {r} (weight {model.weights[r]:.2f}):")
    for mode in (1, 2):  # diagnosis, procedure
        col = model.factors[mode][:, r]
        top = np.argsort(-np.abs(col))[:TOP_K]
        items = ", ".join(
            f"{MODE_NAMES[mode]}#{i} ({col[i]:.3f})" for i in top
        )
        print(f"  {items}")
    support = float((np.abs(model.factors[0][:, r]) > 1e-6).mean())
    print(f"  patient support: {support:.1%} of cohort")

# ---------------------------------------------------------------------------
# 4. Sanity: reconstruct the heaviest component's contribution on the
#    observed entries and report its share of the model energy.
# ---------------------------------------------------------------------------
energy = model.weights**2 / float(model.weights @ model.weights)
print(f"\ncomponent energy shares: {np.round(energy, 3)}")
print("phenotyping example OK")
