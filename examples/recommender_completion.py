"""Tensor completion: predicting missing entries of a (user, item, time) cube.

A recommender-style workload: only a small fraction of the
user x item x context cells are observed; fit a low-rank CP model to the
*observed* entries (zeros are missing, not zero!) and predict the rest.  The
gradient MTTKRPs ride the memoized engine: the observation pattern is fixed,
so all symbolic work happens once and each epoch is a single tree sweep.

Run:  python examples/recommender_completion.py
"""

import numpy as np

import repro
from repro.algos import complete, holdout_split
from repro.core.coo import CooTensor
from repro.synth.lowrank import random_kruskal
from repro.synth.random_tensor import sample_unique_indices

SHAPE = (120, 90, 12)       # users x items x months
TRUE_RANK = 4
OBSERVED_FRACTION = 0.08    # 8% of cells have ratings
NOISE = 0.05

# ---------------------------------------------------------------------------
# 1. Synthesize ground truth and a sparse observation of it.
# ---------------------------------------------------------------------------
rng = np.random.default_rng(0)
truth = random_kruskal(SHAPE, TRUE_RANK, rng, nonneg=False)
n_obs = int(OBSERVED_FRACTION * np.prod(SHAPE))
obs_idx = sample_unique_indices(SHAPE, n_obs, rng)
obs_vals = truth.values_at(obs_idx)
obs_vals += NOISE * float(np.std(obs_vals)) * rng.standard_normal(n_obs)
observations = CooTensor(obs_idx, obs_vals, SHAPE, canonical=True)
print(f"observations: {observations} "
      f"({OBSERVED_FRACTION:.0%} of {np.prod(SHAPE):,} cells)")

# ---------------------------------------------------------------------------
# 2. Hold out 20% of the observations for honest evaluation.
# ---------------------------------------------------------------------------
train, test_idx, test_vals = holdout_split(
    observations, test_fraction=0.2, random_state=1
)
print(f"train on {train.nnz:,} entries, test on {test_idx.shape[0]:,}")

# ---------------------------------------------------------------------------
# 3. Fit by Adam on the observed squared error, rank sweep around the truth.
# ---------------------------------------------------------------------------
print("\nrank sweep (test RMSE is what matters):")
best = None
for rank in (2, 4, 8):
    result = complete(
        train, rank=rank, n_iter_max=400, tol=1e-8,
        learning_rate=0.1, regularization=1e-4, random_state=2,
    )
    pred = result.predict(test_idx)
    test_rmse = float(np.sqrt(np.mean((pred - test_vals) ** 2)))
    marker = ""
    if best is None or test_rmse < best[1]:
        best = (rank, test_rmse, result)
        marker = "  <- best"
    print(f"  R={rank}: train RMSE {result.rmse:.4f}  "
          f"test RMSE {test_rmse:.4f}  "
          f"({result.n_iterations} epochs){marker}")

rank, test_rmse, result = best
baseline_rmse = float(np.sqrt(np.mean((test_vals - test_vals.mean()) ** 2)))
print(f"\nbest rank {rank}: test RMSE {test_rmse:.4f} vs "
      f"predict-the-mean baseline {baseline_rmse:.4f}")
assert test_rmse < 0.5 * baseline_rmse, "completion failed to generalize"

# ---------------------------------------------------------------------------
# 4. Recommend: top unseen items for one user at one time step.
# ---------------------------------------------------------------------------
user, month = 7, 3
items = np.arange(SHAPE[1])
coords = np.column_stack([
    np.full_like(items, user), items, np.full_like(items, month)
])
scores = result.predict(coords)
seen = set(
    observations.idx[
        (observations.idx[:, 0] == user) & (observations.idx[:, 2] == month)
    ][:, 1].tolist()
)
unseen_order = [i for i in np.argsort(-scores) if i not in seen]
print(f"\ntop-5 recommendations for user {user}, month {month}: "
      f"{unseen_order[:5]}")
print("recommender completion example OK")
