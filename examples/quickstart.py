"""Quickstart: decompose a sparse 4th-order tensor with model-driven CP-ALS.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

# ---------------------------------------------------------------------------
# 1. Build a sparse tensor.  Any (coords, values, shape) triple works; here a
#    planted rank-5 model so we can check recovery at the end.
# ---------------------------------------------------------------------------
shape = (30, 24, 20, 16)
planted = repro.synth.lowrank_tensor(
    shape, rank=5, nnz=int(np.prod(shape)), random_state=0
)
X = planted.tensor
print(f"input: {X}")

# ---------------------------------------------------------------------------
# 2. Ask the planner what it would do (optional — cp_als(strategy='auto')
#    does this internally).
# ---------------------------------------------------------------------------
report = repro.plan(X, rank=5)
print("\nplanner ranking (top 5):")
print(report.summary(top=5))

# ---------------------------------------------------------------------------
# 3. Fit.  strategy='auto' selects the memoization algorithm by predicted
#    cost; every strategy computes identical numbers, so this only changes
#    speed, never the result.
# ---------------------------------------------------------------------------
result = repro.cp_als(
    X, rank=5, strategy="auto", n_iter_max=40, tol=1e-9, random_state=0
)
print(f"\nchosen strategy : {result.strategy_name}")
print(f"iterations      : {result.n_iterations} "
      f"(converged={result.converged})")
print(f"final fit       : {result.fit:.6f}")
print(f"time/iteration  : {result.timings['per_iteration'] * 1e3:.2f} ms")

# ---------------------------------------------------------------------------
# 4. Inspect the model and verify recovery of the planted factors.
# ---------------------------------------------------------------------------
model = result.ktensor
print(f"\ncomponent weights: {np.round(model.weights, 2)}")
fms = model.congruence(planted.ktensor)
print(f"factor match score vs planted truth: {fms:.4f} (1.0 = exact)")
assert fms > 0.95, "recovery failed"
print("quickstart OK")
