"""Strategy explorer: see the memoization search space the planner navigates.

Enumerates candidate memoization trees for a 6th-order tensor, prints the
predicted time/memory frontier, shows how a memory budget changes the pick,
and cross-checks the model's flop prediction against the engine's measured
operation counters.

Run:  python examples/strategy_explorer.py
"""

import numpy as np

import repro
from repro.core.cpals import initialize_factors
from repro.core.engine import MemoizedMttkrp
from repro.model import format_table
from repro.perf import counting

RANK = 16

# ---------------------------------------------------------------------------
# 1. A 6th-order skewed tensor: high enough order that strategy choice
#    matters a lot, skewed enough that intermediates shrink.
# ---------------------------------------------------------------------------
X = repro.synth.skewed_random_tensor(
    (200,) * 6, nnz=30_000, exponents=1.1, random_state=0
)
print(f"tensor: {X}")

# ---------------------------------------------------------------------------
# 2. The full candidate space for order 6 and the predicted frontier.
# ---------------------------------------------------------------------------
report = repro.plan(X, rank=RANK)
print(f"\n{len(report.scored)} candidate strategies "
      f"(Catalan enumeration + named families). Extremes:")
rows = []
for scored in report.scored[:6] + report.scored[-3:]:
    c = scored.cost
    rows.append([
        scored.strategy.name,
        str(scored.strategy.to_nested()),
        c.flops_per_iteration,
        round(c.total_memory_bytes / 1e6, 2),
        round(c.predicted_seconds * 1e3, 3),
    ])
print(format_table(
    ["strategy", "tree", "flops/iter", "mem MB", "pred ms"], rows
))

# ---------------------------------------------------------------------------
# 3. Memory budgets change the pick: sweep the cap and watch the planner
#    retreat from full memoization toward cheaper trees.
# ---------------------------------------------------------------------------
print("\nbest strategy under shrinking memory budgets:")
unbounded_mem = report.best.cost.total_memory_bytes
for fraction in (None, 0.75, 0.5, 0.3):
    budget = None if fraction is None else int(unbounded_mem * fraction)
    r = repro.plan(X, rank=RANK, memory_budget=budget)
    label = "unbounded" if budget is None else f"{budget / 1e6:9.2f} MB"
    try:
        best = r.best
        print(f"  budget {label:>12s} -> {best.strategy.name:<12s} "
              f"pred {best.predicted_seconds * 1e3:7.3f} ms  "
              f"mem {best.cost.total_memory_bytes / 1e6:7.2f} MB")
    except RuntimeError:
        print(f"  budget {label:>12s} -> infeasible")

# ---------------------------------------------------------------------------
# 4. Trust, but verify: measured flops equal the model's prediction.
# ---------------------------------------------------------------------------
chosen = report.best.strategy
engine = MemoizedMttkrp(X, chosen, initialize_factors(X, RANK, random_state=0))
for n in engine.mode_order:  # steady state
    engine.mttkrp(n)
    engine.update_factor(n, engine.factors[n])
with counting() as counters:
    for n in engine.mode_order:
        engine.mttkrp(n)
        engine.update_factor(n, engine.factors[n])
predicted = report.best.cost.flops_per_iteration
print(f"\nmodel-predicted flops/iter : {predicted:,}")
print(f"engine-measured flops/iter : {counters.flops:,}")
assert counters.flops == predicted, "model must match measurement exactly"

# ---------------------------------------------------------------------------
# 5. Custom strategies: any nested tuple is a valid tree.
# ---------------------------------------------------------------------------
custom = repro.from_nested(((0, 5), ((1, 2), (3, 4))), name="mine")
result = repro.cp_als(X, rank=4, strategy=custom, n_iter_max=5, tol=0.0,
                      random_state=0)
print(f"\ncustom strategy {custom.to_nested()} ran CP-ALS: "
      f"fit={result.fit:.4f}")

# ---------------------------------------------------------------------------
# 6. The same engine, parallel: a context manager owns the worker pool.
# ---------------------------------------------------------------------------
with repro.parallel.ParallelMemoizedMttkrp(
    X, chosen, initialize_factors(X, RANK, random_state=0), n_workers=2
) as par_engine:
    np.testing.assert_allclose(par_engine.mttkrp(0), engine.mttkrp(0))
    print(f"\nparallel engine ({par_engine.pool.n_workers} workers, kernel "
          f"'{par_engine.kernel.name}') matches the sequential result")
print("strategy explorer OK")
