"""Knowledge-base analysis on a NELL-style (entity, relation, entity) tensor.

Demonstrates the lower-level API: building backends by name, timing one
CP-ALS iteration under each, and using the fit trajectory to pick a CP rank —
the repeated-runs workload that amortizes the engine's symbolic phase.

Run:  python examples/knowledge_base.py
"""

import time

import numpy as np

import repro
from repro.baselines import make_backend
from repro.core.cpals import initialize_factors

# ---------------------------------------------------------------------------
# 1. Load the knowledge-base analog (subject x relation x object beliefs).
# ---------------------------------------------------------------------------
X = repro.synth.load_dataset("nell2", scale=0.3)
print(f"knowledge-base tensor: {X}")

# ---------------------------------------------------------------------------
# 2. Compare MTTKRP backends head-to-head on this tensor.
# ---------------------------------------------------------------------------
RANK = 16
print(f"\nper-iteration MTTKRP time at rank {RANK}:")
for name in ["coo", "ttv", "splatt", "memoized:star", "memoized:bdt"]:
    backend = make_backend(name, X)
    factors = initialize_factors(X, RANK, random_state=0)
    backend.set_factors(factors)

    def one_iteration():
        for n in backend.mode_order:
            backend.mttkrp(n)
            backend.update_factor(n, factors[n])

    one_iteration()  # warm up / build lazy structures
    t0 = time.perf_counter()
    one_iteration()
    print(f"  {name:<14s} {1e3 * (time.perf_counter() - t0):8.2f} ms")

# ---------------------------------------------------------------------------
# 3. Rank selection: run CP-ALS at several ranks, same init seed, and watch
#    the fit.  The planner output is reused across ranks where valid.
# ---------------------------------------------------------------------------
print("\nrank selection (fit after convergence):")
fits = {}
for rank in (4, 8, 16, 32):
    result = repro.cp_als(
        X, rank=rank, strategy="auto", n_iter_max=30, tol=1e-6,
        random_state=1,
    )
    fits[rank] = result.fit
    print(f"  R={rank:<3d} fit={result.fit:.4f} "
          f"strategy={result.strategy_name} iters={result.n_iterations}")

gains = {
    r2: fits[r2] - fits[r1]
    for r1, r2 in zip(sorted(fits), sorted(fits)[1:])
}
knee = min((r for r, g in gains.items() if g < 0.01), default=max(fits))
print(f"suggested rank (diminishing fit gain < 0.01): R={knee}")

# ---------------------------------------------------------------------------
# 4. Link prediction sketch: score unobserved (subject, relation, object)
#    triples with the fitted model.
# ---------------------------------------------------------------------------
result = repro.cp_als(X, rank=16, strategy="auto", n_iter_max=30,
                      tol=1e-6, random_state=1)
model = result.ktensor
rng = np.random.default_rng(2)
candidates = np.column_stack(
    [rng.integers(0, s, 5) for s in X.shape]
)
scores = model.values_at(candidates)
print("\nsample link-prediction scores for random candidate triples:")
for row, s in zip(candidates, scores):
    print(f"  (subj={row[0]}, rel={row[1]}, obj={row[2]}) -> {s:.4f}")
print("knowledge-base example OK")
