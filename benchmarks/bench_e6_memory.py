"""E6 — time/memory trade-off frontier (figure)."""

from conftest import save_result

from repro.core.strategy import balanced_binary
from repro.core.symbolic import SymbolicTree
from repro.experiments import e6_memory
from repro.synth.datasets import load_dataset


def test_symbolic_phase_cost(benchmark, bench_scale):
    """The symbolic phase is the memory-structure build; time it."""
    tensor = load_dataset("skew6d", scale=bench_scale)
    sym = benchmark(lambda: SymbolicTree(tensor, balanced_binary(6)))
    assert sym.index_nbytes() > 0


def test_e6_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e6_memory.run(scale=bench_scale, rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    # Full memoization stays within the log-factor memory bound.
    assert result.observations["max_bdt_memory_ratio"] < 16
