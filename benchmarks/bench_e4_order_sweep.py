"""E4 — speedup over no-memoization vs tensor order (figure)."""

import pytest
from conftest import save_result

from repro.core.cpals import initialize_factors
from repro.core.engine import MemoizedMttkrp
from repro.core.strategy import balanced_binary, star
from repro.experiments import e4_order_sweep
from repro.synth.datasets import load_dataset


@pytest.mark.parametrize("order", [4, 8])
@pytest.mark.parametrize("strategy_fn", [star, balanced_binary],
                         ids=["star", "bdt"])
def test_iteration_by_order(benchmark, bench_scale, bench_rank, order,
                            strategy_fn):
    tensor = load_dataset(f"skew{order}d", scale=bench_scale)
    engine = MemoizedMttkrp(
        tensor, strategy_fn(order),
        initialize_factors(tensor, bench_rank, random_state=0),
    )

    def one_iteration():
        for n in engine.mode_order:
            engine.mttkrp(n)
            engine.update_factor(n, engine.factors[n])

    one_iteration()
    benchmark(one_iteration)


def test_e4_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e4_order_sweep.run(scale=bench_scale, rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["monotone_trend"]
