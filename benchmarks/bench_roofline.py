"""Roofline benchmark: calibration cost + attribution cost + ceilings.

Times the two moving parts of the roofline telemetry stack and records
what they measured, so regressions in either the microbenchmarks or the
span-join show up in ``repro bench-diff``:

* **calibration** — one full :func:`repro.model.calibrate.measure_roofline`
  sweep (triad + gather saturation curve, dense matmul ceiling), the cost
  a user pays for ``repro roofline --force``;
* **attribution** — one :func:`repro.obs.roofline.throughput_from_spans`
  pass over a traced memoized CP-ALS iteration on the acceptance workload
  (order-4, >=1M nnz, R=16 — the ``bench_kernels.py`` tensor), the
  post-hoc join ``repro report`` / ``repro roofline --trace-dir`` run.

Writes ``benchmarks/results/BENCH_roofline.json`` (shared
``repro-bench/v1`` envelope whose payload carries the ``repro-machine/v1``
machine document plus the attributed configs) and appends the
lower-is-better timing series ``roofline.calibrate.seconds`` and
``roofline.attribution.seconds`` to ``benchmarks/history/history.jsonl``::

    PYTHONPATH=src python benchmarks/bench_roofline.py

``--quick`` (or ``REPRO_BENCH_QUICK=1``) shrinks the calibration sweep —
same artifact structure, CI-friendly runtime.
"""

import argparse
import json
import os
import time

import numpy as np

from repro.core.engine import MemoizedMttkrp
from repro.core.strategy import balanced_binary
from repro.model.calibrate import (machine_artifact, measure_roofline,
                                   validate_machine_artifact)
from repro.obs import trace as obs_trace
from repro.obs.buildinfo import artifact_envelope
from repro.obs.roofline import (roofline_report, throughput_from_spans,
                                tree_node_terms)

ACCEPT_SHAPE = (800,) * 4
ACCEPT_NNZ = 1_200_000
ACCEPT_RANK = 16


def _traced_iteration_spans(tensor, rank: int):
    """One traced memoized iteration; returns (finished spans, node terms)."""
    rng = np.random.default_rng(42)
    factors = [rng.standard_normal((d, rank)) for d in tensor.shape]
    engine = MemoizedMttkrp(tensor, balanced_binary(tensor.ndim), factors)
    node_terms = tree_node_terms(
        engine.strategy, engine.symbolic.node_nnz(), rank
    )
    obs_trace.enable(clear=True)
    try:
        for n in engine.mode_order:
            engine.mttkrp(n)
            engine.update_factor(n, factors[n])
        return list(obs_trace.get_tracer().finished()), node_terms
    finally:
        obs_trace.disable()
        obs_trace.get_tracer().clear()


def run_roofline_bench(quick: bool = False) -> dict:
    from repro.synth.skewed import skewed_random_tensor

    t0 = time.perf_counter()
    roofline = measure_roofline(quick=quick)
    calibrate_seconds = time.perf_counter() - t0

    tensor = skewed_random_tensor(ACCEPT_SHAPE, ACCEPT_NNZ, 1.1,
                                  random_state=0)
    spans, node_terms = _traced_iteration_spans(tensor, ACCEPT_RANK)
    t0 = time.perf_counter()
    configs = throughput_from_spans(
        spans, shape=tensor.shape, rank=ACCEPT_RANK, node_terms=node_terms
    )
    attribution_seconds = time.perf_counter() - t0
    report = roofline_report(configs, roofline, load=False)

    return {
        "machine": machine_artifact(roofline),
        "workload": {
            "shape": list(ACCEPT_SHAPE),
            "nnz": int(tensor.nnz),
            "rank": ACCEPT_RANK,
            "strategy": "balanced_binary",
            "spans_joined": len(spans),
        },
        "configs": [c.to_dict() for c in report.configs],
        "guidance": report.guidance(),
        "timings": {
            "calibrate_seconds": calibrate_seconds,
            "attribution_seconds": attribution_seconds,
        },
        "quick": quick,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        default=bool(os.environ.get("REPRO_BENCH_QUICK")),
                        help="shrink the calibration sweep (CI smoke)")
    args = parser.parse_args()

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    report = run_roofline_bench(quick=args.quick)
    # The payload's machine document must satisfy the same validator the
    # CLI applies to the cached artifact (structure, not throughput).
    validate_machine_artifact(report["machine"])

    base = os.path.join(results_dir, "BENCH_roofline")
    with open(base + ".json", "w") as fh:
        json.dump(artifact_envelope("BENCH_roofline", report), fh, indent=2)
        fh.write("\n")

    roof = report["machine"]["result"]["roofline"]
    lines = [
        f"ceilings: bandwidth {roof['peak_bandwidth_gbs']:.2f} GB/s "
        f"(gather {roof['peak_gather_gbs']:.2f}), compute "
        f"{roof['peak_gflops']:.2f} GFLOP/s, saturation at "
        f"{roof['saturation_workers']} worker(s) "
        f"[{roof['host_cpus']} cpus{', quick' if report['quick'] else ''}]",
        f"calibrate: {report['timings']['calibrate_seconds'] * 1e3:.1f} ms, "
        f"attribution pass: "
        f"{report['timings']['attribution_seconds'] * 1e3:.3f} ms over "
        f"{report['workload']['spans_joined']} spans",
        f"{'config':<16s} {'GB/s':>8s} {'% bw roof':>10s} {'bound':>8s}",
    ]
    for c in report["configs"]:
        frac = c["bandwidth_fraction"]
        lines.append(
            f"{c['config']:<16s} {c['gbs']:8.3f} "
            f"{frac * 100.0 if frac is not None else 0.0:9.1f}% "
            f"{c['bound']:>8s}"
        )
    with open(base + ".txt", "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"wrote {base}.json")

    assert report["configs"], "no kernel configs attributed from the trace"
    if not os.environ.get("REPRO_BENCH_NO_HISTORY"):
        from repro.obs.history import BenchHistory

        history = BenchHistory(
            os.path.join(os.path.dirname(__file__), "history",
                         "history.jsonl")
        )
        for name in ("calibrate", "attribution"):
            history.record(f"roofline.{name}.seconds",
                           report["timings"][f"{name}_seconds"])
        print(f"recorded 2 timings into {history.path}")


if __name__ == "__main__":
    main()
