"""E8 — multicore strong scaling (figure).

Times the thread-tier memoized engine, then sweeps the process tier across
worker counts and index layouts ({numpy, alto}) on the order-4 acceptance
workload, asserting the layouts bitwise identical and recording one
``repro-bench-history/v1`` series per (tier, layout, workers) combination
so ``repro bench-diff`` gates regressions on every cell of the sweep.
"""

import os
import warnings

import numpy as np
import pytest
from conftest import record_history, save_result

from repro.core.cpals import initialize_factors
from repro.core.strategy import balanced_binary
from repro.experiments import e8_scaling
from repro.parallel.engine import ParallelMemoizedMttkrp
from repro.parallel.procpool import ProcessMttkrp
from repro.synth.datasets import load_dataset

HOST_CPUS = os.cpu_count() or 1


@pytest.mark.parametrize("n_workers", [1, 4])
def test_parallel_iteration(benchmark, bench_scale, bench_rank, n_workers):
    tensor = load_dataset("delicious", scale=bench_scale)
    with ParallelMemoizedMttkrp(
        tensor, balanced_binary(tensor.ndim),
        initialize_factors(tensor, bench_rank, random_state=0),
        n_workers=n_workers,
    ) as engine:

        def one_iteration():
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, engine.factors[n])

        one_iteration()
        benchmark(one_iteration)
    record_history(
        f"e8.thread.p{n_workers}", benchmark.stats.stats.min,
        workers=n_workers, host_cpus=HOST_CPUS,
    )


@pytest.mark.parametrize("n_workers", [1, 2, 4])
@pytest.mark.parametrize("layout", ["numpy", "alto"])
def test_process_tier_iteration(benchmark, bench_scale, bench_rank,
                                n_workers, layout):
    """Process-tier sweep: shared-memory COO vs ALTO packed codes.

    Worker counts past ``os.cpu_count()`` run deliberately oversubscribed
    (the sweep's whole point); ``host_cpus`` rides along in the history
    knobs so cross-machine diffs stay interpretable.
    """
    tensor = load_dataset("delicious", scale=bench_scale)
    factors = initialize_factors(tensor, bench_rank, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        backend = ProcessMttkrp(
            tensor, n_workers, layout=layout, allow_oversubscribe=True
        )
    try:
        backend.set_factors(factors)

        def one_iteration():
            for n in backend.mode_order:
                backend.mttkrp(n)
                backend.update_factor(n, factors[n])

        one_iteration()
        benchmark(one_iteration)
    finally:
        backend.close()
    record_history(
        f"e8.process.{layout}.p{n_workers}", benchmark.stats.stats.min,
        workers=n_workers, layout=layout, host_cpus=HOST_CPUS,
    )


def test_process_layouts_bitwise_identical(bench_scale, bench_rank):
    """The acceptance invariant: alto and numpy layouts agree bit for bit."""
    tensor = load_dataset("delicious", scale=bench_scale)
    factors = initialize_factors(tensor, bench_rank, random_state=0)
    outs = {}
    for layout in ("numpy", "alto"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = ProcessMttkrp(
                tensor, 4, layout=layout, allow_oversubscribe=True
            )
        try:
            backend.set_factors(factors)
            outs[layout] = [backend.mttkrp(n) for n in backend.mode_order]
        finally:
            backend.close()
    for a, b in zip(outs["numpy"], outs["alto"]):
        assert np.array_equal(a, b)


def test_e8_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e8_scaling.run(scale=bench_scale, rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["modeled_monotone"]
    assert result.observations["layouts_bitwise_identical"]
    assert result.observations["modeled_process_beats_thread_at_4"]
    # The measured claim needs real cores behind the workers.
    if result.observations["host_cpus"] >= 4:
        process_speedup_4 = (result.observations["process_seconds"][1]
                             / result.observations["process_seconds"][4])
        thread_speedup_4 = result.observations["measured_speedup"][4]
        assert process_speedup_4 > thread_speedup_4
