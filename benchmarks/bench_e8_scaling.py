"""E8 — multicore strong scaling (figure)."""

import pytest
from conftest import save_result

from repro.core.cpals import initialize_factors
from repro.core.strategy import balanced_binary
from repro.experiments import e8_scaling
from repro.parallel.engine import ParallelMemoizedMttkrp
from repro.synth.datasets import load_dataset


@pytest.mark.parametrize("n_workers", [1, 4])
def test_parallel_iteration(benchmark, bench_scale, bench_rank, n_workers):
    tensor = load_dataset("delicious", scale=bench_scale)
    with ParallelMemoizedMttkrp(
        tensor, balanced_binary(tensor.ndim),
        initialize_factors(tensor, bench_rank, random_state=0),
        n_workers=n_workers,
    ) as engine:

        def one_iteration():
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, engine.factors[n])

        one_iteration()
        benchmark(one_iteration)


def test_e8_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e8_scaling.run(scale=bench_scale, rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["modeled_monotone"]
