"""E2 — MTTKRP operation counts vs order (motivating figure)."""

from conftest import save_result

from repro.core.engine import MemoizedMttkrp
from repro.core.cpals import initialize_factors
from repro.core.strategy import balanced_binary, star
from repro.experiments import e2_opcounts
from repro.synth.datasets import load_dataset


def _iteration(engine):
    for n in engine.mode_order:
        engine.mttkrp(n)
        engine.update_factor(n, engine.factors[n])


def _bench_engine(benchmark, bench_scale, bench_rank, order, strategy_fn):
    tensor = load_dataset(f"skew{order}d", scale=bench_scale)
    engine = MemoizedMttkrp(
        tensor, strategy_fn(order),
        initialize_factors(tensor, bench_rank, random_state=0),
    )
    _iteration(engine)  # steady state
    benchmark(lambda: _iteration(engine))


def test_order6_star_iteration(benchmark, bench_scale, bench_rank):
    _bench_engine(benchmark, bench_scale, bench_rank, 6, star)


def test_order6_bdt_iteration(benchmark, bench_scale, bench_rank):
    _bench_engine(benchmark, bench_scale, bench_rank, 6, balanced_binary)


def test_e2_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e2_opcounts.run(scale=bench_scale, rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["ratio_grows"]
