"""Shared configuration for the benchmark suite.

Scale knobs:

* ``REPRO_BENCH_SCALE`` (default 0.1) multiplies every registry dataset's
  nonzero count.  0.1 keeps the full suite around a few minutes; 1.0 runs
  the registry reference sizes.
* ``REPRO_BENCH_RANK`` (default 16) sets the CP rank.

Each ``bench_eN_*.py`` regenerates one experiment artifact: it times the
underlying kernels with pytest-benchmark and runs the corresponding
``repro.experiments`` module, writing its table to
``benchmarks/results/`` and asserting the qualitative claim the paper makes.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
RANK = int(os.environ.get("REPRO_BENCH_RANK", "16"))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE


@pytest.fixture(scope="session")
def bench_rank():
    return RANK


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_result(result, results_dir):
    """Persist an ExperimentResult's table + JSON under results/.

    JSON artifacts are wrapped in the shared ``repro-bench/v1`` envelope
    (timestamp, git rev, kernel knobs) so results are comparable across
    commits; see ``repro.obs.buildinfo.artifact_envelope``.
    """
    import json

    from repro.obs.buildinfo import artifact_envelope

    base = os.path.join(results_dir, result.exp_id.lower())
    with open(base + ".txt", "w") as fh:
        fh.write(result.table() + "\n")
    envelope = artifact_envelope(
        result.exp_id, json.loads(result.to_json()), scale=SCALE, rank=RANK
    )
    with open(base + ".json", "w") as fh:
        json.dump(envelope, fh, indent=2)
        fh.write("\n")
    return base


HISTORY_PATH = os.path.join(os.path.dirname(__file__), "history",
                            "history.jsonl")


def record_history(bench_id, seconds, *, unit="seconds", **extra):
    """Append one measurement to the bench history (see docs/benchmarking.md).

    Benches call this next to their pytest-benchmark timing so ``repro
    bench-diff`` can compare the run against the committed baseline.
    Disable with ``REPRO_BENCH_NO_HISTORY=1`` (e.g. throwaway local runs).
    """
    if os.environ.get("REPRO_BENCH_NO_HISTORY"):
        return None
    from repro.obs.history import BenchHistory

    return BenchHistory(HISTORY_PATH).record(
        bench_id, seconds, unit=unit, **extra
    )
