"""E5 — planner accuracy: predicted-best vs measured-best (table)."""

from conftest import save_result

from repro.experiments import e5_model_accuracy
from repro.model.planner import plan
from repro.synth.datasets import load_dataset


def test_planning_overhead(benchmark, bench_scale, bench_rank):
    """Planning itself must be cheap relative to a CP-ALS run."""
    tensor = load_dataset("delicious", scale=bench_scale)
    report = benchmark(lambda: plan(tensor, bench_rank))
    assert report.best.feasible


def test_e5_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e5_model_accuracy.run(scale=bench_scale, rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    obs = result.observations
    assert obs["top2_hits"] >= obs["n_datasets"] - 2
    # Trusting the model instead of timing everything costs little.
    assert obs["max_penalty"] < 1.6
