"""E3 — sequential per-iteration time: adaptive vs baselines (headline)."""

import pytest
from conftest import save_result

from repro.baselines import make_backend
from repro.core.cpals import initialize_factors
from repro.experiments import e3_sequential
from repro.synth.datasets import load_dataset

BACKENDS = ["coo", "ttv", "splatt", "memoized:bdt"]


def _iteration_fn(tensor, backend_name, rank):
    backend = make_backend(backend_name, tensor)
    factors = initialize_factors(tensor, rank, random_state=0)
    backend.set_factors(factors)

    def one_iteration():
        for n in backend.mode_order:
            backend.mttkrp(n)
            backend.update_factor(n, factors[n])

    one_iteration()  # build lazy structures / reach steady state
    return one_iteration


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("dataset", ["nell2", "delicious"])
def test_iteration_time(benchmark, bench_scale, bench_rank, dataset,
                        backend_name):
    tensor = load_dataset(dataset, scale=bench_scale)
    benchmark(_iteration_fn(tensor, backend_name, bench_rank))


def test_e3_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e3_sequential.run(scale=bench_scale, rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    obs = result.observations
    # Order >= 4: adaptive must match or beat every baseline (one miss
    # allowed for timer noise); order 3: stay near the best baseline.
    assert obs["high_order_wins"] >= obs["n_high_order"] - 1
    assert obs["max_low_order_ratio"] < 1.8
