"""Micro-kernel benchmarks: the primitives behind every experiment.

Times the building blocks in isolation so regressions in the hot paths show
up independent of experiment noise: segment reduction (identity-permutation
fast path vs genuine permutation), factor-row gather + Hadamard, symbolic
tree construction, CSF build, and the planner's distinct-count pass.

Also sweeps the pluggable kernel backends (``repro.kernels``) over the full
memoized CP-ALS iteration, and — when run as a script — writes the
backend x block-size sweep on the acceptance workload (order-4, >=1M nnz,
R=16) to ``benchmarks/results/BENCH_kernels.{json,txt}``::

    PYTHONPATH=src python benchmarks/bench_kernels.py
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.core.engine import MemoizedMttkrp
from repro.core.segreduce import SegmentPlan
from repro.core.strategy import balanced_binary
from repro.core.symbolic import SymbolicTree
from repro.formats.csf import CsfTensor
from repro.kernels import available_kernels, unavailable_kernels
from repro.linalg.khatri_rao import khatri_rao_rows
from repro.model.overlap import DistinctCounter
from repro.synth.skewed import skewed_random_tensor

N_ROWS = 300_000
RANK = 16


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(0).random((N_ROWS, RANK))


@pytest.fixture(scope="module")
def tensor():
    return skewed_random_tensor((500,) * 4, 150_000, 1.1, random_state=0)


def test_segreduce_sorted_targets(benchmark, values):
    """Identity-permutation fast path: no gather before reduceat."""
    targets = np.sort(np.random.default_rng(1).integers(0, 30_000, N_ROWS))
    plan = SegmentPlan(targets)
    assert plan.has_identity_perm
    benchmark(plan.reduce, values)


def test_segreduce_permuted_targets(benchmark, values):
    """Genuine permutation: measures the gather overhead."""
    targets = np.random.default_rng(2).integers(0, 30_000, N_ROWS)
    plan = SegmentPlan(targets)
    assert not plan.has_identity_perm
    benchmark(plan.reduce, values)


def test_factor_gather_hadamard(benchmark):
    """The per-contraction gather + Hadamard product."""
    rng = np.random.default_rng(3)
    U = rng.random((50_000, RANK))
    V = rng.random((50_000, RANK))
    rows_u = rng.integers(0, 50_000, N_ROWS)
    rows_v = rng.integers(0, 50_000, N_ROWS)
    benchmark(khatri_rao_rows, [U, V], [rows_u, rows_v])


def test_symbolic_tree_build(benchmark, tensor):
    """The one-time symbolic phase for a full BDT."""
    benchmark(SymbolicTree, tensor, balanced_binary(4))


def test_csf_build(benchmark, tensor):
    """One CSF tree (SPLATT needs N of these)."""
    benchmark(CsfTensor, tensor, (0, 1, 2, 3))


def test_distinct_count_pass(benchmark, tensor):
    """The planner's per-mode-set distinct count (exact method)."""

    def count_all_pairs():
        counter = DistinctCounter(tensor)
        for a in range(3):
            counter.count([a, a + 1])
        return counter

    benchmark(count_all_pairs)


def test_canonicalize(benchmark):
    """COO canonicalization (sort + merge) on duplicated draws."""
    rng = np.random.default_rng(4)
    idx = np.column_stack([rng.integers(0, 200, 200_000) for _ in range(4)])
    vals = rng.random(200_000)

    benchmark(lambda: CooTensor(idx, vals, (200,) * 4))


# ---------------------------------------------------------------------------
# kernel-backend sweep over the memoized ALS iteration
# ---------------------------------------------------------------------------

def _als_iteration(engine: MemoizedMttkrp) -> None:
    for n in engine.mode_order:
        engine.mttkrp(n)
        engine.update_factor(n, engine.factors[n])


def _random_factors(rng, shape, rank):
    return [rng.standard_normal((dim, rank)) for dim in shape]


@pytest.mark.parametrize("backend", available_kernels())
def test_memoized_iteration_backend(benchmark, tensor, backend):
    """One full memoized ALS iteration (all modes) per kernel backend."""
    rng = np.random.default_rng(5)
    engine = MemoizedMttkrp(
        tensor, balanced_binary(4), _random_factors(rng, tensor.shape, RANK),
        kernel=backend,
    )
    _als_iteration(engine)  # warm caches / symbolic phase
    benchmark(_als_iteration, engine)


# ---------------------------------------------------------------------------
# standalone snapshot: the acceptance workload, written to results/
# ---------------------------------------------------------------------------

ACCEPT_SHAPE = (800,) * 4
ACCEPT_NNZ = 1_200_000
ACCEPT_RANK = 16
BLOCK_SWEEP = (0, 2048, 4096, 8192, 16384, 32768)


def _time_iteration(engine: MemoizedMttkrp, repeats: int = 3) -> float:
    _als_iteration(engine)  # warm-up: symbolic phase, index caches, arena
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _als_iteration(engine)
        best = min(best, time.perf_counter() - t0)
    return best


def run_acceptance_sweep(repeats: int = 3) -> dict:
    """Backend x block-size sweep on the acceptance workload."""
    tensor = skewed_random_tensor(
        ACCEPT_SHAPE, ACCEPT_NNZ, 1.1, random_state=0
    )
    rng = np.random.default_rng(42)
    factors = _random_factors(rng, tensor.shape, ACCEPT_RANK)
    strategy = balanced_binary(4)

    runs = []
    reference_out = None
    for backend in available_kernels():
        blocks = BLOCK_SWEEP if backend == "numpy" else (None,)
        for block in blocks:
            if block is None:
                os.environ.pop("REPRO_KERNEL_BLOCK", None)
            else:
                os.environ["REPRO_KERNEL_BLOCK"] = str(block)
            engine = MemoizedMttkrp(
                tensor, strategy, [f.copy() for f in factors], kernel=backend
            )
            seconds = _time_iteration(engine, repeats)
            out = engine.mttkrp(0)
            if reference_out is None:
                reference_out = out
            else:
                assert np.allclose(out, reference_out, rtol=1e-12), (
                    f"{backend} block={block} diverges from reference"
                )
            runs.append({
                "backend": backend,
                "block_rows": block,
                "seconds_per_iteration": seconds,
            })
            print(f"  {backend:10s} block={str(block):>6s}  "
                  f"{seconds * 1e3:8.1f} ms/iter")
    os.environ.pop("REPRO_KERNEL_BLOCK", None)

    baseline = next(r for r in runs if r["backend"] == "reference")
    for r in runs:
        r["speedup_vs_reference"] = (
            baseline["seconds_per_iteration"] / r["seconds_per_iteration"]
        )
    best = min(runs, key=lambda r: r["seconds_per_iteration"])
    return {
        "bench_id": "BENCH_kernels",
        "workload": {
            "shape": list(ACCEPT_SHAPE),
            "nnz": int(tensor.nnz),
            "rank": ACCEPT_RANK,
            "strategy": "balanced_binary",
            "skew": 1.1,
            "repeats": repeats,
        },
        "unavailable_backends": unavailable_kernels(),
        "runs": runs,
        "best": best,
        "speedup_best_vs_reference": best["speedup_vs_reference"],
    }


def main() -> None:
    from repro.obs.buildinfo import artifact_envelope

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    print(f"kernel backend sweep: shape={ACCEPT_SHAPE} nnz~{ACCEPT_NNZ} "
          f"rank={ACCEPT_RANK}")
    report = run_acceptance_sweep()
    base = os.path.join(results_dir, "BENCH_kernels")
    with open(base + ".json", "w") as fh:
        json.dump(artifact_envelope("BENCH_kernels", report), fh, indent=2)
        fh.write("\n")
    lines = [
        f"{'backend':10s} {'block':>6s} {'ms/iter':>9s} {'speedup':>8s}",
    ]
    for r in report["runs"]:
        lines.append(
            f"{r['backend']:10s} {str(r['block_rows']):>6s} "
            f"{r['seconds_per_iteration'] * 1e3:9.1f} "
            f"{r['speedup_vs_reference']:7.2f}x"
        )
    lines.append(
        f"best: {report['best']['backend']} "
        f"block={report['best']['block_rows']} "
        f"({report['speedup_best_vs_reference']:.2f}x vs reference)"
    )
    with open(base + ".txt", "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"wrote {base}.json")


if __name__ == "__main__":
    main()
