"""Micro-kernel benchmarks: the primitives behind every experiment.

Times the building blocks in isolation so regressions in the hot paths show
up independent of experiment noise: segment reduction (identity-permutation
fast path vs genuine permutation), factor-row gather + Hadamard, symbolic
tree construction, CSF build, and the planner's distinct-count pass.
"""

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.core.segreduce import SegmentPlan
from repro.core.strategy import balanced_binary
from repro.core.symbolic import SymbolicTree
from repro.formats.csf import CsfTensor
from repro.linalg.khatri_rao import khatri_rao_rows
from repro.model.overlap import DistinctCounter
from repro.synth.skewed import skewed_random_tensor

N_ROWS = 300_000
RANK = 16


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(0).random((N_ROWS, RANK))


@pytest.fixture(scope="module")
def tensor():
    return skewed_random_tensor((500,) * 4, 150_000, 1.1, random_state=0)


def test_segreduce_sorted_targets(benchmark, values):
    """Identity-permutation fast path: no gather before reduceat."""
    targets = np.sort(np.random.default_rng(1).integers(0, 30_000, N_ROWS))
    plan = SegmentPlan(targets)
    assert plan._perm_identity
    benchmark(plan.reduce, values)


def test_segreduce_permuted_targets(benchmark, values):
    """Genuine permutation: measures the gather overhead."""
    targets = np.random.default_rng(2).integers(0, 30_000, N_ROWS)
    plan = SegmentPlan(targets)
    assert not plan._perm_identity
    benchmark(plan.reduce, values)


def test_factor_gather_hadamard(benchmark):
    """The per-contraction gather + Hadamard product."""
    rng = np.random.default_rng(3)
    U = rng.random((50_000, RANK))
    V = rng.random((50_000, RANK))
    rows_u = rng.integers(0, 50_000, N_ROWS)
    rows_v = rng.integers(0, 50_000, N_ROWS)
    benchmark(khatri_rao_rows, [U, V], [rows_u, rows_v])


def test_symbolic_tree_build(benchmark, tensor):
    """The one-time symbolic phase for a full BDT."""
    benchmark(SymbolicTree, tensor, balanced_binary(4))


def test_csf_build(benchmark, tensor):
    """One CSF tree (SPLATT needs N of these)."""
    benchmark(CsfTensor, tensor, (0, 1, 2, 3))


def test_distinct_count_pass(benchmark, tensor):
    """The planner's per-mode-set distinct count (exact method)."""

    def count_all_pairs():
        counter = DistinctCounter(tensor)
        for a in range(3):
            counter.count([a, a + 1])
        return counter

    benchmark(count_all_pairs)


def test_canonicalize(benchmark):
    """COO canonicalization (sort + merge) on duplicated draws."""
    rng = np.random.default_rng(4)
    idx = np.column_stack([rng.integers(0, 200, 200_000) for _ in range(4)])
    vals = rng.random(200_000)

    benchmark(lambda: CooTensor(idx, vals, (200,) * 4))
