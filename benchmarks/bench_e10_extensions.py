"""E10 — extension workloads: completion gradient, restarts, nonneg CP."""

from conftest import save_result

from repro.core.cpals import initialize_factors
from repro.core.engine import MemoizedMttkrp
from repro.core.strategy import balanced_binary
from repro.experiments import e10_extensions
from repro.synth.datasets import load_dataset


def test_gradient_sweep_kernel(benchmark, bench_scale, bench_rank):
    """The completion gradient: all-N MTTKRPs in one tree sweep."""
    tensor = load_dataset("enron", scale=bench_scale)
    engine = MemoizedMttkrp(
        tensor, balanced_binary(tensor.ndim),
        initialize_factors(tensor, bench_rank, random_state=0),
    )

    def sweep():
        engine.invalidate_all()
        engine.mttkrp_all()

    sweep()
    benchmark(sweep)


def test_e10a_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e10_extensions.run_gradient_kernel(
            scale=bench_scale, rank=bench_rank
        ),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    # The sweep must clearly beat per-mode COO on at least one dataset.
    assert max(
        row[5] for row in result.rows  # "vs coo" column
    ) > 1.0


def test_e10b_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e10_extensions.run_restart_amortization(
            scale=bench_scale, rank=bench_rank
        ),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["restart_speedup"] > 0.9


def test_e10c_table(benchmark, bench_scale, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e10_extensions.run_ncp_parity(
            scale=bench_scale, rank=bench_rank
        ),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["time_ratio"] < 2.0
