"""E11 — index-storage comparison across sparse formats."""

from conftest import save_result

from repro.experiments import e11_storage
from repro.formats.hicoo import HicooTensor
from repro.synth.datasets import load_dataset


def test_hicoo_build(benchmark, bench_scale):
    tensor = load_dataset("delicious", scale=bench_scale)
    h = benchmark(lambda: HicooTensor(tensor, block_size=128))
    assert h.nnz == tensor.nnz


def test_e11_table(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: e11_storage.run(scale=bench_scale), rounds=1, iterations=1
    )
    save_result(result, results_dir)
    obs = result.observations
    assert obs["max_tree_ratio"] <= obs["log_bound"]
    # HiCOO must compress below raw COO on the skewed analogs.
    assert min(obs["hicoo_ratio_by_dataset"].values()) < 1.0
