"""E9 — ablations: symbolic amortization, skew sensitivity, planner value."""

from conftest import save_result

from repro.experiments import e9_ablations


def test_e9a_symbolic_amortization(benchmark, bench_scale, bench_rank,
                                   results_dir):
    result = benchmark.pedantic(
        lambda: e9_ablations.run_symbolic_amortization(
            scale=bench_scale, rank=bench_rank
        ),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    finite = [
        v for v in result.observations["breakeven_by_dataset"].values()
        if v is not None
    ]
    assert finite, "memoization should pay on at least one dataset"


def test_e9b_skew_sensitivity(benchmark, bench_rank, results_dir):
    result = benchmark.pedantic(
        lambda: e9_ablations.run_skew_sensitivity(rank=bench_rank),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["monotone"]


def test_e9c_planner_vs_fixed(benchmark, bench_scale, bench_rank,
                              results_dir):
    result = benchmark.pedantic(
        lambda: e9_ablations.run_planner_vs_fixed(
            scale=bench_scale, rank=bench_rank
        ),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    # At least one fixed strategy loses somewhere — adaptivity has value.
    assert sum(result.observations["losses_by_fixed_strategy"].values()) > 0
