"""E7 — CP rank sweep (figure)."""

import pytest
from conftest import save_result

from repro.baselines import make_backend
from repro.core.cpals import initialize_factors
from repro.experiments import e7_rank_sweep
from repro.synth.datasets import load_dataset


@pytest.mark.parametrize("rank", [8, 32])
@pytest.mark.parametrize("backend_name", ["splatt", "memoized:bdt"])
def test_iteration_by_rank(benchmark, bench_scale, rank, backend_name):
    tensor = load_dataset("flickr", scale=bench_scale)
    backend = make_backend(backend_name, tensor)
    factors = initialize_factors(tensor, rank, random_state=0)
    backend.set_factors(factors)

    def one_iteration():
        for n in backend.mode_order:
            backend.mttkrp(n)
            backend.update_factor(n, factors[n])

    one_iteration()
    benchmark(one_iteration)


def test_e7_table(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: e7_rank_sweep.run(scale=bench_scale),
        rounds=1, iterations=1,
    )
    save_result(result, results_dir)
    assert result.observations["geomean_speedup"] > 1.0
