"""Tracer overhead: the observability layer must be free when off.

Times one full memoized CP-ALS iteration on the acceptance workload
(order-4, >=1M nnz, R=16 — the same tensor as ``bench_kernels.py``, so the
disabled numbers are directly comparable to ``BENCH_kernels.json``) under
three configurations:

* ``disabled`` — tracing off, the shipped default (guards short-circuit);
* ``enabled``  — spans recorded for every iteration/MTTKRP/rebuild/kernel;
* ``enabled+watchdog`` — spans plus per-iteration counter collection and
  the model-drift comparison, i.e. everything ``repro trace`` turns on.

Writes ``benchmarks/results/BENCH_obs_overhead.json`` (shared
``repro-bench/v1`` envelope) with per-config ms/iteration and overhead
percentages relative to ``disabled``::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

The acceptance bar: enabled overhead < 3%, disabled within timer noise of
an uninstrumented build (the guard is one module-bool check per call site).
"""

import json
import os
import time

import numpy as np

from repro.core.engine import MemoizedMttkrp
from repro.core.strategy import balanced_binary
from repro.model.cost import cost_from_symbolic
from repro.obs import trace as obs_trace
from repro.obs.buildinfo import artifact_envelope
from repro.obs.metrics import registry
from repro.obs.watchdog import DriftWatchdog
from repro.perf import counters as perf

ACCEPT_SHAPE = (800,) * 4
ACCEPT_NNZ = 1_200_000
ACCEPT_RANK = 16
REPEATS = 5


def _als_iteration(engine: MemoizedMttkrp) -> None:
    for n in engine.mode_order:
        engine.mttkrp(n)
        engine.update_factor(n, engine.factors[n])


def _best_iteration_seconds(engine, repeats: int, *,
                            watchdog: DriftWatchdog | None = None) -> float:
    _als_iteration(engine)  # warm: caches, arena, (when tracing) span path
    best = float("inf")
    for i in range(repeats):
        t0 = time.perf_counter()
        if watchdog is not None:
            with perf.counting() as c:
                _als_iteration(engine)
            seconds = time.perf_counter() - t0
            watchdog.observe(i, c, seconds)
        else:
            _als_iteration(engine)
            seconds = time.perf_counter() - t0
        best = min(best, seconds)
    return best


def run_overhead_bench(repeats: int = REPEATS) -> dict:
    from repro.synth.skewed import skewed_random_tensor

    tensor = skewed_random_tensor(ACCEPT_SHAPE, ACCEPT_NNZ, 1.1,
                                  random_state=0)
    rng = np.random.default_rng(42)
    factors = [rng.standard_normal((d, ACCEPT_RANK)) for d in tensor.shape]
    engine = MemoizedMttkrp(
        tensor, balanced_binary(4), [f.copy() for f in factors]
    )

    obs_trace.disable()
    disabled = _best_iteration_seconds(engine, repeats)

    obs_trace.enable(clear=True)
    enabled = _best_iteration_seconds(engine, repeats)

    obs_trace.get_tracer().clear()
    registry.reset()
    watchdog = DriftWatchdog(
        cost_from_symbolic(engine.symbolic, ACCEPT_RANK), warn=False
    )
    with_watchdog = _best_iteration_seconds(
        engine, repeats, watchdog=watchdog
    )
    span_count = len(obs_trace.get_tracer())
    obs_trace.disable()
    obs_trace.get_tracer().clear()

    def pct(seconds: float) -> float:
        return (seconds / disabled - 1.0) * 100.0

    return {
        "workload": {
            "shape": list(ACCEPT_SHAPE),
            "nnz": int(tensor.nnz),
            "rank": ACCEPT_RANK,
            "strategy": "balanced_binary",
            "skew": 1.1,
            "repeats": repeats,
        },
        "runs": {
            "disabled": {"seconds_per_iteration": disabled,
                         "overhead_pct": 0.0},
            "enabled": {"seconds_per_iteration": enabled,
                        "overhead_pct": pct(enabled)},
            "enabled_watchdog": {
                "seconds_per_iteration": with_watchdog,
                "overhead_pct": pct(with_watchdog),
            },
        },
        "spans_per_measured_block": span_count,
        "drift_fired": watchdog.n_fired(),
    }


def main() -> None:
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    print(f"tracer overhead: shape={ACCEPT_SHAPE} nnz~{ACCEPT_NNZ} "
          f"rank={ACCEPT_RANK}")
    report = run_overhead_bench()
    base = os.path.join(results_dir, "BENCH_obs_overhead")
    with open(base + ".json", "w") as fh:
        json.dump(artifact_envelope("BENCH_obs_overhead", report), fh,
                  indent=2)
        fh.write("\n")
    lines = [f"{'config':<18s} {'ms/iter':>9s} {'overhead':>9s}"]
    for name, run in report["runs"].items():
        lines.append(
            f"{name:<18s} {run['seconds_per_iteration'] * 1e3:9.1f} "
            f"{run['overhead_pct']:8.2f}%"
        )
    with open(base + ".txt", "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"wrote {base}.json")


if __name__ == "__main__":
    main()
