"""Tracer overhead: the observability layer must be free when off.

Times one full memoized CP-ALS iteration on the acceptance workload
(order-4, >=1M nnz, R=16 — the same tensor as ``bench_kernels.py``, so the
disabled numbers are directly comparable to ``BENCH_kernels.json``) under
three configurations:

* ``disabled`` — tracing off, the shipped default (guards short-circuit);
* ``enabled``  — spans recorded for every iteration/MTTKRP/rebuild/kernel;
* ``enabled_profile`` — spans plus the sampling stack profiler
  (:mod:`repro.obs.profiler`) at its default 97 Hz: one
  ``sys._current_frames`` sweep per period joined to the live span
  path, i.e. what ``repro profile`` turns on.  Its budget is asserted
  against an *interleaved* sampler-off baseline measured in the same
  window — median of paired on/off iteration ratios
  (``profile.ab_overhead_pct``) — which cancels the clock drift and
  per-iteration noise of shared hosts that the sequential rows above
  inherit;
* ``enabled_watchdog`` — spans plus per-iteration counter collection and
  the model-drift comparison;
* ``enabled_memtrack`` — spans plus the memoized-value memory tracker
  (store/free events + per-iteration windows), i.e. everything
  ``repro trace`` turns on except tracemalloc sampling;
* ``enabled_health`` — spans plus the numerical-health collector
  (:mod:`repro.obs.health`): per-mode Gram conditioning (one ``R x R``
  ``eigh``), factor deltas, cross-mode congruence, and the
  fit-trajectory classifier, mirrored mode-for-mode off ``cp_als``'s
  wiring, i.e. what ``REPRO_HEALTH=1`` and ``repro trace`` turn on;
* ``enabled_attribution`` — spans plus per-node/per-mode cost
  attribution (:mod:`repro.obs.attribution`): predictions registered
  from the cost model, per-iteration windows diffed into
  predicted-vs-measured readings, i.e. what ``repro explain --measure``
  and ``repro trace`` turn on;
* ``enabled_roofline`` — spans plus a per-iteration roofline
  attribution pass (:func:`repro.obs.roofline.throughput_from_spans`
  joining every finished span so far with the model's per-node terms,
  then republishing the achieved-throughput gauges), i.e. what a live
  roofline panel costs; the pass runs *inside* the timed window;
* ``enabled_events_serve`` — spans plus the structured event log and a
  live :class:`repro.obs.serve.ObsServer` scraping thread running for
  the duration, i.e. the full ``repro serve <cmd>`` live-telemetry
  stack.

The process tier gets its own trio on the same workload (baseline
``process_disabled`` with tracing off, ``process_worker_capture`` with
in-worker span capture shipping worker-interior spans back per task, and
``process_synthesized`` with capture off — parent-side reconstructed
spans only); the cost under test there is the per-task shipping of
worker telemetry.

Writes ``benchmarks/results/BENCH_obs_overhead.json`` (shared
``repro-bench/v1`` envelope) with per-config ms/iteration and overhead
percentages relative to ``disabled``, and appends the per-config timings
to ``benchmarks/history/history.jsonl`` for ``repro bench-diff``::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

The acceptance bar: enabled overhead < 3%, memory tracking, cost
attribution, numerical health, and the sampling profiler (at default
hz) < 2% each on top, disabled within timer noise of an uninstrumented
build (the guard is one module-bool check per call site — profiler off
means one ``None`` check in the span hooks).
"""

import json
import os
import time

import numpy as np

from repro.core.engine import MemoizedMttkrp
from repro.core.strategy import balanced_binary
from repro.model.cost import cost_from_symbolic
from repro.obs import attribution as obs_attr
from repro.obs import events as obs_events
from repro.obs import health as obs_health
from repro.obs import memory as obs_memory
from repro.obs import trace as obs_trace
from repro.obs.buildinfo import artifact_envelope
from repro.obs.metrics import registry
from repro.obs.watchdog import DriftWatchdog
from repro.perf import counters as perf

ACCEPT_SHAPE = (800,) * 4
ACCEPT_NNZ = 1_200_000
ACCEPT_RANK = 16
REPEATS = 5


def _als_iteration(engine: MemoizedMttkrp) -> None:
    for n in engine.mode_order:
        engine.mttkrp(n)
        engine.update_factor(n, engine.factors[n])


def _best_iteration_seconds(engine, repeats: int, *,
                            watchdog: DriftWatchdog | None = None,
                            mem_tracker=None,
                            attr_recorder=None,
                            roofline_pass=None,
                            health_collector=None,
                            health_grams=None,
                            emit_iteration_events: bool = False) -> float:
    _als_iteration(engine)  # warm: caches, arena, (when tracing) span path
    best = float("inf")
    for i in range(repeats):
        if mem_tracker is not None:
            mem_tracker.begin_window()
        if attr_recorder is not None:
            attr_recorder.begin_window()
        if health_collector is not None:
            health_collector.begin_iteration(i)
        t0 = time.perf_counter()
        if watchdog is not None:
            with perf.counting() as c:
                _als_iteration(engine)
            seconds = time.perf_counter() - t0
            watchdog.observe(i, c, seconds)
        else:
            _als_iteration(engine)
            if health_collector is not None:
                # Mirror cp_als's per-mode/per-iteration observation
                # inside the timed window: solve-site contextvar + Gram
                # conditioning + factor delta per mode, then congruence
                # + trajectory at iteration close.  The Hadamard
                # combine is charged to health here even though ALS
                # pays it anyway for the solve — conservative.
                for n in engine.mode_order:
                    obs_health.set_site(i, n)
                    health_collector.observe_mode(
                        n, health_grams.combined(skip=n),
                        engine.factors[n], engine.factors[n],
                    )
                obs_health.clear_site()
                health_collector.observe_iteration(
                    i, grams=health_grams, fit=1.0 - 0.5 ** (i + 1)
                )
            if roofline_pass is not None:
                roofline_pass()  # part of the cost under test: stay timed
            seconds = time.perf_counter() - t0
        if mem_tracker is not None:
            mem_tracker.observe_iteration(
                i, workspace_bytes=engine.workspace_nbytes()
            )
        if attr_recorder is not None:
            attr_recorder.observe_iteration(i)
        if emit_iteration_events:
            # Mirror cp_als's per-iteration event on top of the engine's
            # own node_rebuild events.
            obs_events.emit("iteration", iteration=i, fit=0.0,
                            seconds=seconds)
        best = min(best, seconds)
    return best


def run_overhead_bench(repeats: int = REPEATS) -> dict:
    from repro.synth.skewed import skewed_random_tensor

    tensor = skewed_random_tensor(ACCEPT_SHAPE, ACCEPT_NNZ, 1.1,
                                  random_state=0)
    rng = np.random.default_rng(42)
    factors = [rng.standard_normal((d, ACCEPT_RANK)) for d in tensor.shape]
    engine = MemoizedMttkrp(
        tensor, balanced_binary(4), [f.copy() for f in factors]
    )

    obs_trace.disable()
    disabled = _best_iteration_seconds(engine, repeats)

    obs_trace.enable(clear=True)
    enabled = _best_iteration_seconds(engine, repeats)

    from repro.obs import profiler as obs_profiler

    # Sampling profiler, measured as an interleaved A/B: alternate
    # sampler-off / sampler-on iterations inside one window so the
    # minutes-scale clock drift of shared hosts cancels out of the
    # comparison instead of landing on whichever config ran last (the
    # shared ``disabled`` baseline above is minutes stale by now).
    obs_trace.get_tracer().clear()
    _als_iteration(engine)  # warm
    obs_profiler.enable(clear=True)  # default 97 Hz; warm sampler path
    _als_iteration(engine)
    obs_profiler.disable()
    profile_base = float("inf")
    with_profile = float("inf")
    profile_ratios = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        _als_iteration(engine)
        off = time.perf_counter() - t0
        obs_profiler.enable()
        t0 = time.perf_counter()
        _als_iteration(engine)
        on = time.perf_counter() - t0
        obs_profiler.disable()
        profile_base = min(profile_base, off)
        with_profile = min(with_profile, on)
        profile_ratios.append(on / off)
    profile_samples = obs_profiler.get_store().n_samples
    profile_hz = obs_profiler.get_store().hz
    # Median of the paired ratios: per-iteration noise on shared hosts
    # runs +-15%, which a best-of ratio amplifies (the two minima land
    # on different noise excursions) while the paired median averages
    # away.
    profile_ab_pct = (float(np.median(profile_ratios)) - 1.0) * 100.0

    obs_trace.get_tracer().clear()
    registry.reset()
    watchdog = DriftWatchdog(
        cost_from_symbolic(engine.symbolic, ACCEPT_RANK), warn=False
    )
    with_watchdog = _best_iteration_seconds(
        engine, repeats, watchdog=watchdog
    )
    span_count = len(obs_trace.get_tracer())

    obs_trace.get_tracer().clear()
    obs_memory.enable(clear=True)
    tracker = obs_memory.get_tracker()
    with_memtrack = _best_iteration_seconds(
        engine, repeats, mem_tracker=tracker
    )
    mem_peak = tracker.peak_bytes
    mem_events = tracker.n_stores + tracker.n_frees
    obs_memory.disable()
    tracker.reset()

    # Re-measure the disabled baseline mid-run: on drifting shared hosts
    # the start-of-run baseline is minutes stale by the time the later
    # configs measure, and a 2% budget is not resolvable against it.
    # The attribution/roofline budgets below assert against this
    # adjacent re-measurement; both baselines are reported so the drift
    # itself is visible in the artifact.
    obs_trace.disable()
    disabled_recheck = _best_iteration_seconds(engine, repeats)
    obs_trace.enable(clear=True)

    obs_trace.get_tracer().clear()
    obs_attr.enable(clear=True)
    recorder = obs_attr.get_recorder()
    recorder.register(engine.strategy, engine.symbolic.node_nnz(),
                      ACCEPT_RANK)
    with_attribution = _best_iteration_seconds(
        engine, repeats, attr_recorder=recorder
    )
    attr_readings = len(recorder.readings)
    attr_worst_err = max(
        (r.max_node_err("flops") or 0.0) for r in recorder.readings
    )
    obs_attr.disable()
    recorder.reset()

    from repro.linalg.gram import GramCache

    obs_trace.get_tracer().clear()
    obs_health.enable(clear=True)
    health_collector = obs_health.get_collector()
    health_collector.start_run(n_modes=len(ACCEPT_SHAPE),
                               rank=ACCEPT_RANK)
    with_health = _best_iteration_seconds(
        engine, repeats, health_collector=health_collector,
        health_grams=GramCache(engine.factors),
    )
    health_readings = len(health_collector.readings)
    health_trajectory = (
        health_collector.readings[-1].trajectory if health_readings
        else None
    )
    obs_health.disable()
    health_collector.reset()

    from repro.obs.roofline import (publish_roofline_gauges,
                                    throughput_from_spans, tree_node_terms)

    obs_trace.get_tracer().clear()
    node_terms = tree_node_terms(
        engine.strategy, engine.symbolic.node_nnz(), ACCEPT_RANK
    )
    tracer = obs_trace.get_tracer()

    def _roofline_pass() -> None:
        publish_roofline_gauges(None, throughput_from_spans(
            tracer.finished(), shape=tensor.shape, rank=ACCEPT_RANK,
            node_terms=node_terms,
        ))

    with_roofline = _best_iteration_seconds(
        engine, repeats, roofline_pass=_roofline_pass
    )
    roofline_configs = len(throughput_from_spans(
        tracer.finished(), shape=tensor.shape, rank=ACCEPT_RANK,
        node_terms=node_terms,
    ))

    from repro.obs.serve import ObsServer

    obs_trace.get_tracer().clear()
    obs_events.enable(clear=True)
    with ObsServer(port=0):
        with_events_serve = _best_iteration_seconds(
            engine, repeats, emit_iteration_events=True
        )
    n_events = len(obs_events.get_log())
    obs_events.disable()
    obs_events.get_log().clear()
    obs_trace.disable()
    obs_trace.get_tracer().clear()

    # -- process tier: in-worker capture vs synthesized vs off ---------
    import warnings

    from repro.parallel.procpool import ProcessMttkrp, ProcessPool

    def _process_best(traced: bool, capture: bool) -> float:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = ProcessMttkrp(
                tensor, layout="alto",
                pool=ProcessPool(2, allow_oversubscribe=True,
                                 capture=capture),
            )
        try:
            backend.set_factors([f.copy() for f in factors])
            if traced:
                obs_trace.enable(clear=True)
            else:
                obs_trace.disable()
            _als_iteration(backend)  # warm: workers, shm, span path
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                _als_iteration(backend)
                best = min(best, time.perf_counter() - t0)
            return best
        finally:
            backend.close()
            obs_trace.disable()
            obs_trace.get_tracer().clear()

    process_disabled = _process_best(traced=False, capture=True)
    process_capture = _process_best(traced=True, capture=True)
    process_synth = _process_best(traced=True, capture=False)

    def pct(seconds: float) -> float:
        return (seconds / disabled - 1.0) * 100.0

    def process_pct(seconds: float) -> float:
        return (seconds / process_disabled - 1.0) * 100.0

    return {
        "workload": {
            "shape": list(ACCEPT_SHAPE),
            "nnz": int(tensor.nnz),
            "rank": ACCEPT_RANK,
            "strategy": "balanced_binary",
            "skew": 1.1,
            "repeats": repeats,
        },
        "runs": {
            "disabled": {"seconds_per_iteration": disabled,
                         "overhead_pct": 0.0},
            "enabled": {"seconds_per_iteration": enabled,
                        "overhead_pct": pct(enabled)},
            "enabled_profile": {
                "seconds_per_iteration": with_profile,
                "overhead_pct": pct(with_profile),
            },
            "enabled_watchdog": {
                "seconds_per_iteration": with_watchdog,
                "overhead_pct": pct(with_watchdog),
            },
            "enabled_memtrack": {
                "seconds_per_iteration": with_memtrack,
                "overhead_pct": pct(with_memtrack),
            },
            "disabled_recheck": {
                "seconds_per_iteration": disabled_recheck,
                "overhead_pct": pct(disabled_recheck),
            },
            "enabled_attribution": {
                "seconds_per_iteration": with_attribution,
                "overhead_pct": pct(with_attribution),
            },
            "enabled_health": {
                "seconds_per_iteration": with_health,
                "overhead_pct": pct(with_health),
            },
            "enabled_roofline": {
                "seconds_per_iteration": with_roofline,
                "overhead_pct": pct(with_roofline),
            },
            "enabled_events_serve": {
                "seconds_per_iteration": with_events_serve,
                "overhead_pct": pct(with_events_serve),
            },
            "process_disabled": {
                "seconds_per_iteration": process_disabled,
                "overhead_pct": 0.0,
            },
            "process_worker_capture": {
                "seconds_per_iteration": process_capture,
                "overhead_pct": process_pct(process_capture),
            },
            "process_synthesized": {
                "seconds_per_iteration": process_synth,
                "overhead_pct": process_pct(process_synth),
            },
        },
        "spans_per_measured_block": span_count,
        "drift_fired": watchdog.n_fired(),
        "memtrack": {"peak_bytes": mem_peak, "events": mem_events},
        "attribution": {"readings": attr_readings,
                        "max_node_flop_err": attr_worst_err},
        "health": {"readings": health_readings,
                   "final_trajectory": health_trajectory},
        "roofline": {"configs": roofline_configs},
        "profile": {"samples": profile_samples, "hz": profile_hz,
                    "ab_baseline_seconds": profile_base,
                    "ab_overhead_pct": profile_ab_pct},
        "events_logged": n_events,
    }


def main() -> None:
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    # Best-of-N needs enough samples to resolve the ~2% budgets on noisy
    # (virtualized, single-core) hosts; bump via REPRO_BENCH_REPEATS.
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", REPEATS))
    print(f"tracer overhead: shape={ACCEPT_SHAPE} nnz~{ACCEPT_NNZ} "
          f"rank={ACCEPT_RANK} repeats={repeats}")
    report = run_overhead_bench(repeats)
    base = os.path.join(results_dir, "BENCH_obs_overhead")
    with open(base + ".json", "w") as fh:
        json.dump(artifact_envelope("BENCH_obs_overhead", report), fh,
                  indent=2)
        fh.write("\n")
    lines = [f"{'config':<22s} {'ms/iter':>9s} {'overhead':>9s}"]
    for name, run in report["runs"].items():
        lines.append(
            f"{name:<22s} {run['seconds_per_iteration'] * 1e3:9.1f} "
            f"{run['overhead_pct']:8.2f}%"
        )
    with open(base + ".txt", "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"wrote {base}.json")
    recheck = report["runs"]["disabled_recheck"]["seconds_per_iteration"]
    attr = report["runs"]["enabled_attribution"]
    attr_cost = (attr["seconds_per_iteration"] / recheck - 1.0) * 100.0
    assert attr_cost < 2.0, (
        f"attribution overhead {attr_cost:.2f}% (vs the adjacent "
        f"re-measured baseline) exceeds the 2% budget"
    )
    assert report["attribution"]["max_node_flop_err"] == 0.0, (
        "attributed per-node flops diverged from the model on numpy"
    )
    profile_ab = report["profile"]["ab_overhead_pct"]
    assert profile_ab < 2.0, (
        f"sampling profiler costs {profile_ab:.2f}% over the interleaved "
        f"tracing baseline at {report['profile']['hz']:g} Hz, exceeding "
        f"the 2% budget"
    )
    assert report["profile"]["samples"] > 0, (
        "profiler collected no samples across the profiled iterations"
    )
    health = report["runs"]["enabled_health"]
    health_cost = (health["seconds_per_iteration"] / recheck - 1.0) * 100.0
    assert health_cost < 2.0, (
        f"numerical-health collection costs {health_cost:.2f}% (vs the "
        f"adjacent re-measured baseline), exceeding the 2% budget"
    )
    assert report["health"]["readings"] >= 1, (
        "health collector produced no readings on an enabled run"
    )
    roofline = report["runs"]["enabled_roofline"]
    roofline_cost = (roofline["seconds_per_iteration"] / recheck
                     - 1.0) * 100.0
    assert roofline_cost < 2.0, (
        f"roofline attribution pass costs {roofline_cost:.2f}% (vs the "
        f"adjacent re-measured baseline), exceeding the 2% budget"
    )
    assert report["roofline"]["configs"] >= 1, (
        "roofline pass attributed no kernel configs on a traced run"
    )
    capture = report["runs"]["process_worker_capture"]
    synth = report["runs"]["process_synthesized"]
    capture_cost = (capture["seconds_per_iteration"]
                    / synth["seconds_per_iteration"] - 1.0) * 100.0
    assert capture_cost < 2.0, (
        f"in-worker span capture costs {capture_cost:.2f}% over the "
        f"synthesized-span baseline, exceeding the 2% budget"
    )
    if not os.environ.get("REPRO_BENCH_NO_HISTORY"):
        from repro.obs.history import BenchHistory

        history = BenchHistory(
            os.path.join(os.path.dirname(__file__), "history",
                         "history.jsonl")
        )
        for name, run in report["runs"].items():
            history.record(f"obs_overhead.{name}.seconds_per_iteration",
                           run["seconds_per_iteration"])
        print(f"recorded {len(report['runs'])} timings into {history.path}")


if __name__ == "__main__":
    main()
