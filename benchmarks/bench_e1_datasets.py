"""E1 — dataset statistics table (Table 1 analog).

Benchmarks dataset generation/canonicalization and regenerates the dataset
statistics table.
"""

from conftest import save_result

from repro.experiments import e1_datasets
from repro.synth.datasets import load_dataset


def test_generate_delicious(benchmark, bench_scale):
    tensor = benchmark(lambda: load_dataset("delicious", scale=bench_scale))
    assert tensor.ndim == 4


def test_generate_nell1(benchmark, bench_scale):
    tensor = benchmark(lambda: load_dataset("nell1", scale=bench_scale))
    assert tensor.ndim == 3


def test_e1_table(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: e1_datasets.run(scale=bench_scale), rounds=1, iterations=1
    )
    save_result(result, results_dir)
    # Qualitative claim: skewed analogs exhibit real index overlap.
    assert result.observations["max_overlap"] > 1.0
